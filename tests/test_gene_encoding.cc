/**
 * @file
 * Tests for the 64-bit hardware gene format (Fig 6).
 */

#include <gtest/gtest.h>

#include "hw/gene_encoding.hh"

using namespace genesys;
using namespace genesys::hw;
using genesys::neat::ConnectionGene;
using genesys::neat::NodeGene;

TEST(GeneCodec, NodeRoundTripWithinQuantization)
{
    GeneCodec codec;
    NodeGene g;
    g.key = 42;
    g.bias = 1.375;     // exactly representable in Q6.10
    g.response = -2.25;
    g.activation = neat::Activation::ReLU;
    g.aggregation = neat::Aggregation::Max;

    const PackedGene p = codec.encodeNode(g, NodeClass::Hidden);
    EXPECT_TRUE(p.isNode());
    const NodeGene d = codec.decodeNode(p);
    EXPECT_EQ(d.key, 42);
    EXPECT_DOUBLE_EQ(d.bias, 1.375);
    EXPECT_DOUBLE_EQ(d.response, -2.25);
    EXPECT_EQ(d.activation, neat::Activation::ReLU);
    EXPECT_EQ(d.aggregation, neat::Aggregation::Max);
    EXPECT_EQ(codec.nodeClass(p), NodeClass::Hidden);
}

TEST(GeneCodec, NodeClassField)
{
    GeneCodec codec;
    NodeGene g;
    g.key = 0;
    EXPECT_EQ(codec.nodeClass(codec.encodeNode(g, NodeClass::Output)),
              NodeClass::Output);
    EXPECT_EQ(codec.nodeClass(codec.encodeNode(g, NodeClass::Input)),
              NodeClass::Input);
}

TEST(GeneCodec, ConnectionRoundTrip)
{
    GeneCodec codec;
    ConnectionGene g;
    g.key = {-7, 123};
    g.weight = -0.5;
    g.enabled = false;

    const PackedGene p = codec.encodeConnection(g);
    EXPECT_TRUE(p.isConnection());
    const ConnectionGene d = codec.decodeConnection(p);
    EXPECT_EQ(d.key.first, -7);
    EXPECT_EQ(d.key.second, 123);
    EXPECT_DOUBLE_EQ(d.weight, -0.5);
    EXPECT_FALSE(d.enabled);
    EXPECT_EQ(codec.connectionSource(p), -7);
    EXPECT_EQ(codec.connectionDest(p), 123);
}

TEST(GeneCodec, AttributesSaturateToQ610Range)
{
    GeneCodec codec;
    NodeGene g;
    g.key = 1;
    g.bias = 1000.0;
    g.response = -1000.0;
    const NodeGene d = codec.decodeNode(
        codec.encodeNode(g, NodeClass::Hidden));
    EXPECT_NEAR(d.bias, 32.0, 0.01);
    EXPECT_DOUBLE_EQ(d.response, -32.0);
}

TEST(GeneCodec, QuantizationErrorBounded)
{
    GeneCodec codec;
    XorWow rng(1);
    for (int i = 0; i < 500; ++i) {
        ConnectionGene g;
        g.key = {static_cast<int>(rng.uniformInt(100u)),
                 static_cast<int>(rng.uniformInt(100u))};
        g.weight = rng.uniform(-30.0, 30.0);
        const auto d = codec.decodeConnection(codec.encodeConnection(g));
        EXPECT_NEAR(d.weight, g.weight,
                    codec.attrCodec().resolution() / 2 + 1e-12);
    }
}

TEST(GeneCodec, DecodeGenomeIsLossyNotACheckpointFormat)
{
    // The Q6.10 hardware format quantizes every attribute: decode .
    // encode is NOT the identity, and its round-trip error is pinned
    // at resolution/2 = 2^-11 (round-to-nearest). This is why the hw
    // codec serves as the hardware/migration wire format only —
    // checkpoint/resume uses persist::encodeGenomeLossless, which
    // stores raw IEEE-754 bits (see test_snapshot.cc).
    GeneCodec codec;
    const double kMaxError = codec.attrCodec().resolution() / 2;
    EXPECT_DOUBLE_EQ(kMaxError, 1.0 / 2048.0);

    // A typical non-representable attribute: 0.3 is not a multiple of
    // 2^-10, so it cannot survive the hw round trip...
    ConnectionGene g;
    g.key = {0, 1};
    g.weight = 0.3;
    const auto d = codec.decodeConnection(codec.encodeConnection(g));
    EXPECT_NE(d.weight, 0.3);
    EXPECT_NEAR(d.weight, 0.3, kMaxError + 1e-12);

    // ...and a uniform sweep across the Q6.10 range never exceeds the
    // pinned bound, while almost never being exact.
    XorWow rng(71);
    int exact = 0;
    for (int i = 0; i < 2000; ++i) {
        ConnectionGene c;
        c.key = {0, 1};
        c.weight = rng.uniform(-32.0, 31.96875);
        const auto back =
            codec.decodeConnection(codec.encodeConnection(c));
        ASSERT_NEAR(back.weight, c.weight, kMaxError + 1e-12);
        if (back.weight == c.weight)
            ++exact;
    }
    EXPECT_LT(exact, 100);
}

TEST(GeneCodec, IdBiasCoversNegativeInputIds)
{
    EXPECT_EQ(GeneCodec::unpackId(GeneCodec::packId(-128)), -128);
    EXPECT_EQ(GeneCodec::unpackId(GeneCodec::packId(0)), 0);
    EXPECT_EQ(GeneCodec::unpackId(GeneCodec::packId(30000)), 30000);
}

TEST(GeneCodec, IdOutOfRangeThrows)
{
    EXPECT_ANY_THROW(GeneCodec::packId(40000));
    EXPECT_ANY_THROW(GeneCodec::packId(-40000));
}

TEST(GeneCodec, GenomeSerializationOrdered)
{
    neat::NeatConfig cfg;
    cfg.numInputs = 3;
    cfg.numOutputs = 2;
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(2);
    auto g = neat::Genome::createNew(5, cfg, idx, rng);
    g.mutateAddNode(cfg, idx, rng);

    GeneCodec codec;
    const auto stream = codec.encodeGenome(g, cfg);
    ASSERT_EQ(stream.size(), g.numGenes());

    // Node cluster first, then connections; each ascending.
    bool in_conns = false;
    int last_node = -1;
    std::pair<int, int> last_conn{-100000, -100000};
    for (const auto p : stream) {
        if (p.isConnection()) {
            in_conns = true;
            const std::pair<int, int> k{codec.connectionSource(p),
                                        codec.connectionDest(p)};
            EXPECT_GT(k, last_conn);
            last_conn = k;
        } else {
            EXPECT_FALSE(in_conns) << "node gene after connections";
            EXPECT_GT(codec.nodeId(p), last_node);
            last_node = codec.nodeId(p);
        }
    }
}

TEST(GeneCodec, BufferOverloadMatchesAllocatingEncode)
{
    // The zero-alloc overload (caller-provided buffer, straight SoA
    // walk) must emit word-for-word the same stream as the allocating
    // overload, and must reuse the buffer's capacity across genomes.
    neat::NeatConfig cfg;
    cfg.numInputs = 4;
    cfg.numOutputs = 2;
    GeneCodec codec;
    std::vector<PackedGene> buffer;

    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(29);
    auto g = neat::Genome::createNew(1, cfg, idx, rng);
    for (int round = 0; round < 20; ++round) {
        g.mutate(cfg, idx, rng);
        const auto expect = codec.encodeGenome(g, cfg);
        codec.encodeGenome(g, cfg, buffer);
        ASSERT_EQ(buffer.size(), expect.size()) << "round " << round;
        for (size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(buffer[i].raw, expect[i].raw)
                << "round " << round << " word " << i;
    }

    // A warmed buffer never reallocates for same-or-smaller genomes.
    const auto warmed = buffer.capacity();
    codec.encodeGenome(g, cfg, buffer);
    EXPECT_EQ(buffer.capacity(), warmed);
}

TEST(GeneCodec, GenomeRoundTripPreservesStructure)
{
    neat::NeatConfig cfg;
    cfg.numInputs = 4;
    cfg.numOutputs = 2;
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(3);
    auto g = neat::Genome::createNew(7, cfg, idx, rng);
    for (int i = 0; i < 10; ++i)
        g.mutate(cfg, idx, rng);

    GeneCodec codec;
    const auto back = codec.decodeGenome(codec.encodeGenome(g, cfg), 7);
    EXPECT_EQ(back.numNodeGenes(), g.numNodeGenes());
    EXPECT_EQ(back.numConnectionGenes(), g.numConnectionGenes());
    for (const auto &[nk, ng] : g.nodes()) {
        ASSERT_TRUE(back.nodes().count(nk));
        EXPECT_EQ(back.nodes().at(nk).activation, ng.activation);
    }
    for (const auto &[ck, cg] : g.connections()) {
        ASSERT_TRUE(back.connections().count(ck));
        EXPECT_EQ(back.connections().at(ck).enabled, cg.enabled);
        EXPECT_NEAR(back.connections().at(ck).weight, cg.weight,
                    codec.attrCodec().resolution() / 2 + 1e-12);
    }
    back.validate(cfg);
}

TEST(GeneCodec, OutputNodesTaggedInGenomeStream)
{
    neat::NeatConfig cfg;
    cfg.numInputs = 2;
    cfg.numOutputs = 2;
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(4);
    auto g = neat::Genome::createNew(0, cfg, idx, rng);
    g.mutateAddNode(cfg, idx, rng);
    GeneCodec codec;
    for (const auto p : codec.encodeGenome(g, cfg)) {
        if (p.isNode()) {
            const NodeClass cls = codec.nodeClass(p);
            if (codec.nodeId(p) < cfg.numOutputs)
                EXPECT_EQ(cls, NodeClass::Output);
            else
                EXPECT_EQ(cls, NodeClass::Hidden);
        }
    }
}
