/**
 * @file
 * Tests for NeatConfig validation and the MutationCounts arithmetic.
 */

#include <gtest/gtest.h>

#include "neat/genome.hh"

using namespace genesys::neat;

namespace
{

NeatConfig
valid()
{
    NeatConfig cfg;
    cfg.numInputs = 2;
    cfg.numOutputs = 1;
    return cfg;
}

} // namespace

TEST(NeatConfigTest, DefaultIsValid)
{
    EXPECT_NO_THROW(valid().validate());
}

TEST(NeatConfigTest, RejectsTinyPopulation)
{
    auto cfg = valid();
    cfg.populationSize = 1;
    EXPECT_ANY_THROW(cfg.validate());
}

TEST(NeatConfigTest, RejectsZeroInputsOrOutputs)
{
    auto cfg = valid();
    cfg.numInputs = 0;
    EXPECT_ANY_THROW(cfg.validate());
    cfg = valid();
    cfg.numOutputs = 0;
    EXPECT_ANY_THROW(cfg.validate());
}

TEST(NeatConfigTest, RejectsBadProbabilities)
{
    auto cfg = valid();
    cfg.connAddProb = 1.5;
    EXPECT_ANY_THROW(cfg.validate());
    cfg = valid();
    cfg.nodeDeleteProb = -0.1;
    EXPECT_ANY_THROW(cfg.validate());
    cfg = valid();
    cfg.partialConnectionProb = 2.0;
    EXPECT_ANY_THROW(cfg.validate());
}

TEST(NeatConfigTest, RejectsBadSurvivalThreshold)
{
    auto cfg = valid();
    cfg.survivalThreshold = 0.0;
    EXPECT_ANY_THROW(cfg.validate());
    cfg.survivalThreshold = 1.5;
    EXPECT_ANY_THROW(cfg.validate());
}

TEST(NeatConfigTest, RejectsElitismBeyondPopulation)
{
    auto cfg = valid();
    cfg.populationSize = 10;
    cfg.elitism = 10;
    EXPECT_ANY_THROW(cfg.validate());
    cfg.elitism = -1;
    EXPECT_ANY_THROW(cfg.validate());
}

TEST(NeatConfigTest, RejectsEmptyAttributeOptions)
{
    auto cfg = valid();
    cfg.activation.options.clear();
    EXPECT_ANY_THROW(cfg.validate());
    cfg = valid();
    cfg.aggregation.options.clear();
    EXPECT_ANY_THROW(cfg.validate());
}

TEST(NeatConfigTest, RejectsNonPositiveCompatThreshold)
{
    auto cfg = valid();
    cfg.compatibilityThreshold = 0.0;
    EXPECT_ANY_THROW(cfg.validate());
}

TEST(MutationCountsTest, TotalAndAccumulate)
{
    MutationCounts a;
    a.crossoverOps = 1;
    a.cloneOps = 2;
    a.perturbOps = 3;
    a.addOps = 4;
    a.deleteOps = 5;
    EXPECT_EQ(a.total(), 15);

    MutationCounts b;
    b.perturbOps = 10;
    b += a;
    EXPECT_EQ(b.perturbOps, 13);
    EXPECT_EQ(b.total(), 25);
}
