/**
 * @file
 * Differential tests for the cross-genome wave scheduler: the
 * plan-heterogeneous lane kernel (env::evaluateWave) and the engine
 * path built on it must be bit-identical to the serial episode loop —
 * episode for episode, genome for genome, and down to whole-run
 * RunSummary digests — at 1 and 8 threads, for feed-forward and
 * recurrent populations. The suite also locks the scheduler's
 * observability: occupancy counters populated, refill accounting
 * exact, shared-plan lanes grouped into batched dispatches.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "core/genesys.hh"
#include "env/runner.hh"
#include "exec/eval_engine.hh"
#include "nn/compiled_plan.hh"

using namespace genesys;
using namespace genesys::exec;

namespace
{

/** Mutation-grown genomes on the CartPole config. */
std::pair<neat::NeatConfig, std::vector<neat::Genome>>
makeGenomes(int count, uint64_t seed, bool feed_forward = true)
{
    auto env = env::makeEnvironment("CartPole_v0");
    neat::NeatConfig cfg = env::configForEnvironment(*env);
    cfg.populationSize = count;
    cfg.feedForward = feed_forward;
    // Non-trivial policies: perturb weights away from the paper's
    // all-zero init so episodes take varied lengths.
    cfg.weight.initStdev = 1.0;
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(seed);
    std::vector<neat::Genome> genomes;
    genomes.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        auto g = neat::Genome::createNew(i, cfg, idx, rng);
        for (int m = 0; m < 10; ++m)
            g.mutate(cfg, idx, rng);
        genomes.push_back(std::move(g));
    }
    return {cfg, std::move(genomes)};
}

std::vector<neat::GenomeHandle>
handlesOf(const std::vector<neat::Genome> &genomes)
{
    std::vector<neat::GenomeHandle> hs;
    hs.reserve(genomes.size());
    for (size_t i = 0; i < genomes.size(); ++i)
        hs.push_back({static_cast<int>(i), &genomes[i]});
    return hs;
}

std::vector<env::Environment *>
makeLanes(std::vector<std::unique_ptr<env::Environment>> &owned,
          int width)
{
    std::vector<env::Environment *> lanes;
    for (int l = 0; l < width; ++l) {
        owned.push_back(env::makeEnvironment("CartPole_v0"));
        lanes.push_back(owned.back().get());
    }
    return lanes;
}

void
expectEpisodeIdentical(const env::EpisodeResult &a,
                       const env::EpisodeResult &b)
{
    EXPECT_EQ(a.fitness, b.fitness);
    EXPECT_EQ(a.cumulativeReward, b.cumulativeReward);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.inferences, b.inferences);
    EXPECT_EQ(a.macs, b.macs);
}

void
expectDetailIdentical(const env::EvalDetail &a, const env::EvalDetail &b)
{
    EXPECT_EQ(a.fitness, b.fitness);
    EXPECT_EQ(a.inferences, b.inferences);
    EXPECT_EQ(a.macs, b.macs);
    EXPECT_EQ(a.maxEpisodeSteps, b.maxEpisodeSteps);
    ASSERT_EQ(a.episodes.size(), b.episodes.size());
    for (size_t e = 0; e < a.episodes.size(); ++e)
        expectEpisodeIdentical(a.episodes[e], b.episodes[e]);
}

} // namespace

// --- kernel level: evaluateWave vs one-episode-at-a-time ---------------------

TEST(WaveSchedulerTest, HeterogeneousWaveMatchesSerialAcrossWidths)
{
    for (const bool feed_forward : {true, false}) {
        const auto [cfg, genomes] = makeGenomes(13, 61, feed_forward);

        // One episode of each genome, every genome a different plan —
        // the plan-heterogeneous packing the scheduler exists for.
        std::vector<nn::CompiledPlan> plans;
        plans.reserve(genomes.size());
        for (const auto &g : genomes)
            plans.push_back(nn::CompiledPlan::compileFor(g, cfg));

        std::vector<env::WaveItem> items;
        std::vector<env::EpisodeResult> expect;
        auto serial_env = env::makeEnvironment("CartPole_v0");
        for (size_t i = 0; i < plans.size(); ++i) {
            const uint64_t seed = 1000 + 17 * i;
            items.push_back({&plans[i], seed});
            env::EpisodeRunner runner(*serial_env, seed, 1);
            nn::PlanScratch scratch;
            expect.push_back(
                runner.runEpisode(plans[i], scratch, seed));
        }

        for (int width : {1, 2, 5, 8, 16}) {
            SCOPED_TRACE(std::string(feed_forward ? "ff" : "rec") +
                         " width " + std::to_string(width));
            std::vector<std::unique_ptr<env::Environment>> owned;
            const auto lanes = makeLanes(owned, width);
            env::WaveScratch scratch;
            const auto wave =
                env::evaluateWave(items, lanes, scratch);

            ASSERT_EQ(wave.episodes.size(), expect.size());
            for (size_t i = 0; i < expect.size(); ++i) {
                SCOPED_TRACE("item " + std::to_string(i));
                expectEpisodeIdentical(wave.episodes[i], expect[i]);
            }

            // Refill accounting: every episode beyond the initial
            // lane fill entered through a refill.
            const long fill = std::min<long>(
                width, static_cast<long>(items.size()));
            EXPECT_EQ(wave.stats.refills,
                      static_cast<long>(items.size()) - fill);
            EXPECT_GT(wave.stats.supersteps, 0);
            EXPECT_EQ(wave.stats.laneSlotSteps,
                      wave.stats.supersteps * width);
            EXPECT_GE(wave.stats.laneSlotSteps,
                      wave.stats.activeLaneSteps);
            // Useful lane-steps are exactly the forward passes.
            long inferences = 0;
            for (const auto &r : wave.episodes)
                inferences += r.inferences;
            EXPECT_EQ(wave.stats.activeLaneSteps, inferences);
            EXPECT_GT(wave.stats.occupancy(), 0.0);
            EXPECT_LE(wave.stats.occupancy(), 1.0);
        }
    }
}

TEST(WaveSchedulerTest, SharedPlanLanesGroupIntoBatchedDispatch)
{
    // Several episodes of the same plans, adjacent in the item queue:
    // same-plan lanes must execute through the grouped activateBatch
    // dispatch (observable in the stats) and stay bit-identical to
    // the serial loop.
    const auto [cfg, genomes] = makeGenomes(4, 67);
    std::vector<nn::CompiledPlan> plans;
    plans.reserve(genomes.size());
    for (const auto &g : genomes)
        plans.push_back(nn::CompiledPlan::compileFor(g, cfg));

    std::vector<env::WaveItem> items;
    std::vector<std::vector<uint64_t>> seeds(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
        for (int e = 0; e < 4; ++e) {
            const uint64_t seed = 31 * (i + 1) + 7 * e;
            items.push_back({&plans[i], seed});
            seeds[i].push_back(seed);
        }
    }

    std::vector<std::unique_ptr<env::Environment>> owned;
    const auto lanes = makeLanes(owned, 8);
    env::WaveScratch scratch;
    const auto wave = env::evaluateWave(items, lanes, scratch);

    // The initial fill packs 2 plans x 4 episodes onto the 8 lanes,
    // so grouped dispatch must have fired.
    EXPECT_GT(wave.stats.groupedLaneActivations, 0);

    size_t k = 0;
    for (size_t i = 0; i < plans.size(); ++i) {
        auto serial_env = env::makeEnvironment("CartPole_v0");
        env::EpisodeRunner runner(*serial_env, seeds[i].front(),
                                  static_cast<int>(seeds[i].size()));
        const auto serial = runner.evaluateDetailed(plans[i], seeds[i]);
        for (size_t e = 0; e < seeds[i].size(); ++e, ++k) {
            SCOPED_TRACE("plan " + std::to_string(i) + " episode " +
                         std::to_string(e));
            expectEpisodeIdentical(wave.episodes[k],
                                   serial.episodes[e]);
        }
    }
}

TEST(WaveSchedulerTest, EmptyAndUndersubscribedWaves)
{
    const auto [cfg, genomes] = makeGenomes(2, 71);
    const auto plan = nn::CompiledPlan::compileFor(genomes[0], cfg);

    std::vector<std::unique_ptr<env::Environment>> owned;
    const auto lanes = makeLanes(owned, 8);
    env::WaveScratch scratch;

    // No items: nothing runs, nothing counted.
    const auto empty = env::evaluateWave({}, lanes, scratch);
    EXPECT_TRUE(empty.episodes.empty());
    EXPECT_EQ(empty.stats.supersteps, 0);

    // Fewer items than lanes: spare lanes idle but are accounted as
    // unoccupied slots, and results still match the serial episode.
    std::vector<env::WaveItem> items{{&plan, 5}};
    const auto wave = env::evaluateWave(items, lanes, scratch);
    ASSERT_EQ(wave.episodes.size(), 1u);
    auto serial_env = env::makeEnvironment("CartPole_v0");
    env::EpisodeRunner runner(*serial_env, 5, 1);
    nn::PlanScratch pscratch;
    expectEpisodeIdentical(wave.episodes[0],
                           runner.runEpisode(plan, pscratch, 5));
    EXPECT_EQ(wave.stats.refills, 0);
    EXPECT_EQ(wave.stats.laneSlotSteps, wave.stats.supersteps * 8);
    EXPECT_EQ(wave.stats.activeLaneSteps, wave.stats.supersteps);
}

// --- engine level: heterogeneous waves vs serial episode loop ----------------

namespace
{

std::vector<GenomeEvalResult>
evaluateEngine(const neat::NeatConfig &cfg,
               const std::vector<neat::Genome> &genomes, int threads,
               bool heterogeneous, int waveLanes = 0)
{
    EvalEngineConfig ecfg;
    ecfg.envName = "CartPole_v0";
    ecfg.numThreads = threads;
    ecfg.episodes = 1;
    ecfg.batchEpisodes = heterogeneous;
    ecfg.heterogeneousLanes = heterogeneous;
    ecfg.waveLanes = waveLanes;
    EvalEngine engine(ecfg);
    return engine.evaluateGeneration(handlesOf(genomes), cfg,
                                     EvalEngine::perGenomeSeeds(83));
}

} // namespace

TEST(WaveSchedulerTest, EngineWavePathMatchesSerialAcrossThreads)
{
    for (const bool feed_forward : {true, false}) {
        const auto [cfg, genomes] = makeGenomes(26, 73, feed_forward);
        const auto reference =
            evaluateEngine(cfg, genomes, 1, /*heterogeneous=*/false);

        for (int threads : {1, 8}) {
            for (int lanes : {0, 3, 16}) {
                SCOPED_TRACE(std::string(feed_forward ? "ff" : "rec") +
                             " threads " + std::to_string(threads) +
                             " waveLanes " + std::to_string(lanes));
                const auto waved = evaluateEngine(
                    cfg, genomes, threads, /*heterogeneous=*/true,
                    lanes);
                ASSERT_EQ(waved.size(), reference.size());
                for (size_t i = 0; i < reference.size(); ++i) {
                    EXPECT_EQ(waved[i].genomeKey,
                              reference[i].genomeKey);
                    expectDetailIdentical(waved[i].detail,
                                          reference[i].detail);
                }
            }
        }
    }
}

TEST(WaveSchedulerTest, OccupancyCountersObservableAndHigh)
{
    // A batch large enough to keep every refill queue full: measured
    // lane occupancy must be high (the whole point of the scheduler)
    // and the counters must be populated.
    const auto [cfg, genomes] = makeGenomes(96, 79);

    EvalEngineConfig ecfg;
    ecfg.envName = "CartPole_v0";
    ecfg.numThreads = 2;
    ecfg.episodes = 1;
    ecfg.waveLanes = 8;
    EvalEngine engine(ecfg);
    ASSERT_TRUE(engine.usesHeterogeneousWaves());
    EXPECT_EQ(engine.config().waveLanes, 8);

    engine.evaluateGeneration(handlesOf(genomes), cfg,
                              EvalEngine::sharedEpisodeSeeds(3));
    const BatchStats &stats = engine.lastBatchStats();
    EXPECT_EQ(stats.laneCount, 8);
    EXPECT_GT(stats.waveSupersteps, 0);
    EXPECT_GT(stats.waveRefills, 0);
    EXPECT_EQ(stats.waveLaneSlotSteps,
              stats.waveSupersteps * 8);
    EXPECT_GT(stats.laneOccupancy(), 0.75);
    EXPECT_LE(stats.laneOccupancy(), 1.0);

    // The serial and per-genome-batched paths leave the wave
    // counters untouched.
    EvalEngineConfig scfg = ecfg;
    scfg.heterogeneousLanes = false;
    EvalEngine serial_engine(scfg);
    EXPECT_FALSE(serial_engine.usesHeterogeneousWaves());
    serial_engine.evaluateGeneration(handlesOf(genomes), cfg,
                                     EvalEngine::sharedEpisodeSeeds(3));
    EXPECT_EQ(serial_engine.lastBatchStats().waveLaneSlotSteps, 0);
    EXPECT_EQ(serial_engine.lastBatchStats().laneOccupancy(), 0.0);
}

TEST(WaveSchedulerTest, WaveShardSizingAndFallback)
{
    // episodes > 1 falls back to per-genome batching: wave shards
    // resolve to a single lane and the episode-lane resolution is
    // unchanged.
    EvalEngineConfig ecfg;
    ecfg.envName = "CartPole_v0";
    ecfg.numThreads = 1;
    ecfg.episodes = 3;
    ecfg.heterogeneousLanes = true;
    ecfg.waveLanes = 16;
    EvalEngine engine(ecfg);
    EXPECT_FALSE(engine.usesHeterogeneousWaves());
    EXPECT_EQ(engine.config().waveLanes, 1);
    EXPECT_EQ(engine.config().episodeLanes, 3);

    // episodes == 1 activates waves; the default lane width is 8.
    EvalEngineConfig wcfg = ecfg;
    wcfg.episodes = 1;
    wcfg.waveLanes = 0;
    EvalEngine wave_engine(wcfg);
    EXPECT_TRUE(wave_engine.usesHeterogeneousWaves());
    EXPECT_EQ(wave_engine.config().waveLanes, 8);
}

TEST(WaveSchedulerTest, EvalModeFromEnv)
{
    const auto flags = [](const char *mode) {
        setenv("GENESYS_EVAL_MODE", mode, 1);
        EvalEngineConfig cfg;
        cfg.batchEpisodes = false;
        cfg.heterogeneousLanes = false;
        applyEvalModeFromEnv(cfg);
        unsetenv("GENESYS_EVAL_MODE");
        return std::make_pair(cfg.batchEpisodes,
                              cfg.heterogeneousLanes);
    };
    EXPECT_EQ(flags("serial"), std::make_pair(false, false));
    EXPECT_EQ(flags("batch"), std::make_pair(true, false));
    EXPECT_EQ(flags("waves"), std::make_pair(true, true));

    // Unset leaves the config untouched.
    unsetenv("GENESYS_EVAL_MODE");
    EvalEngineConfig cfg;
    cfg.batchEpisodes = false;
    cfg.heterogeneousLanes = true;
    applyEvalModeFromEnv(cfg);
    EXPECT_FALSE(cfg.batchEpisodes);
    EXPECT_TRUE(cfg.heterogeneousLanes);

    // Unknown modes are a configuration error, not a silent default.
    setenv("GENESYS_EVAL_MODE", "bogus", 1);
    EXPECT_THROW(applyEvalModeFromEnv(cfg), std::runtime_error);
    unsetenv("GENESYS_EVAL_MODE");
}

// --- system level: whole-run RunSummary digests ------------------------------

namespace
{

std::pair<core::RunSummary, std::vector<core::GenerationReport>>
runSystem(int threads, bool heterogeneous, bool feed_forward)
{
    core::SystemConfig cfg;
    cfg.envName = "CartPole_v0";
    cfg.maxGenerations = 4;
    cfg.episodesPerEval = 1; // the wave scheduler's home turf
    cfg.seed = 29;
    cfg.numThreads = threads;
    cfg.batchEpisodes = heterogeneous;
    cfg.heterogeneousLanes = heterogeneous;
    if (!feed_forward)
        cfg.tweakNeat = [](neat::NeatConfig &ncfg) {
            ncfg.feedForward = false;
        };
    core::System sys(cfg);
    auto summary = sys.run();
    return {summary, sys.reports()};
}

} // namespace

TEST(WaveSchedulerTest, SystemDigestsIdenticalWavesVsSerial)
{
    // This differential pins the mode comparison itself, so the CI
    // mode matrix must not collapse both sides onto one path.
    unsetenv("GENESYS_EVAL_MODE");

    for (const bool feed_forward : {true, false}) {
        const auto [s_ref, r_ref] =
            runSystem(1, /*heterogeneous=*/false, feed_forward);

        for (int threads : {1, 8}) {
            SCOPED_TRACE(std::string(feed_forward ? "ff" : "rec") +
                         " threads " + std::to_string(threads));
            const auto [s, r] =
                runSystem(threads, /*heterogeneous=*/true,
                          feed_forward);
            EXPECT_EQ(s.solved, s_ref.solved);
            EXPECT_EQ(s.generations, s_ref.generations);
            EXPECT_EQ(s.bestFitness, s_ref.bestFitness);
            EXPECT_EQ(s.totalEvolutionEnergyJ,
                      s_ref.totalEvolutionEnergyJ);
            EXPECT_EQ(s.totalInferenceEnergyJ,
                      s_ref.totalInferenceEnergyJ);
            EXPECT_EQ(s.totalEvolutionSeconds,
                      s_ref.totalEvolutionSeconds);
            EXPECT_EQ(s.totalInferenceSeconds,
                      s_ref.totalInferenceSeconds);
            ASSERT_EQ(r.size(), r_ref.size());
            for (size_t i = 0; i < r_ref.size(); ++i) {
                EXPECT_EQ(r[i].algo.bestFitness,
                          r_ref[i].algo.bestFitness);
                EXPECT_EQ(r[i].algo.meanFitness,
                          r_ref[i].algo.meanFitness);
                EXPECT_EQ(r[i].inferenceSteps, r_ref[i].inferenceSteps);
                EXPECT_EQ(r[i].maxEpisodeSteps,
                          r_ref[i].maxEpisodeSteps);
                EXPECT_EQ(r[i].macsPerStep, r_ref[i].macsPerStep);
                EXPECT_EQ(r[i].hw.eve.cycles, r_ref[i].hw.eve.cycles);
                EXPECT_EQ(r[i].hw.adam.cycles,
                          r_ref[i].hw.adam.cycles);
                // The wave path's occupancy counters surface in the
                // generation reports; the serial path leaves them 0.
                EXPECT_GT(r[i].batches.waveLaneSlotSteps, 0);
                EXPECT_EQ(r_ref[i].batches.waveLaneSlotSteps, 0);
            }
        }
    }
}
