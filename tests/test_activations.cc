/**
 * @file
 * Tests for activation and aggregation functions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "neat/activations.hh"
#include "neat/aggregations.hh"

using namespace genesys::neat;

TEST(Activations, SigmoidRangeAndMidpoint)
{
    EXPECT_NEAR(activate(Activation::Sigmoid, 0.0), 0.5, 1e-12);
    EXPECT_GT(activate(Activation::Sigmoid, 10.0), 0.999);
    EXPECT_LT(activate(Activation::Sigmoid, -10.0), 0.001);
}

TEST(Activations, SigmoidMonotone)
{
    double prev = -1.0;
    for (double x = -5.0; x <= 5.0; x += 0.1) {
        const double y = activate(Activation::Sigmoid, x);
        EXPECT_GE(y, prev);
        prev = y;
    }
}

TEST(Activations, TanhOddSymmetry)
{
    for (double x : {0.1, 0.7, 2.0}) {
        EXPECT_NEAR(activate(Activation::Tanh, x),
                    -activate(Activation::Tanh, -x), 1e-12);
    }
}

TEST(Activations, ReLU)
{
    EXPECT_DOUBLE_EQ(activate(Activation::ReLU, -3.0), 0.0);
    EXPECT_DOUBLE_EQ(activate(Activation::ReLU, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(activate(Activation::ReLU, 0.0), 0.0);
}

TEST(Activations, IdentityAbsClamped)
{
    EXPECT_DOUBLE_EQ(activate(Activation::Identity, -2.5), -2.5);
    EXPECT_DOUBLE_EQ(activate(Activation::Abs, -2.5), 2.5);
    EXPECT_DOUBLE_EQ(activate(Activation::Clamped, -2.5), -1.0);
    EXPECT_DOUBLE_EQ(activate(Activation::Clamped, 0.5), 0.5);
    EXPECT_DOUBLE_EQ(activate(Activation::Clamped, 2.5), 1.0);
}

TEST(Activations, GaussPeaksAtZero)
{
    EXPECT_DOUBLE_EQ(activate(Activation::Gauss, 0.0), 1.0);
    EXPECT_LT(activate(Activation::Gauss, 1.0), 0.05);
}

TEST(Activations, NoOverflowAtExtremes)
{
    for (auto a : allActivations()) {
        for (double x : {-1e6, -60.0, 0.0, 60.0, 1e6}) {
            const double y = activate(a, x);
            EXPECT_TRUE(std::isfinite(y))
                << activationName(a) << "(" << x << ")";
        }
    }
}

TEST(Activations, NamesRoundTrip)
{
    for (auto a : allActivations())
        EXPECT_EQ(activationFromName(activationName(a)), a);
}

TEST(Activations, UnknownNameThrows)
{
    EXPECT_ANY_THROW(activationFromName("swish"));
}

TEST(Activations, FitsInFourBitField)
{
    EXPECT_LE(static_cast<int>(Activation::NumActivations), 16);
    EXPECT_EQ(allActivations().size(),
              static_cast<size_t>(Activation::NumActivations));
}

TEST(Aggregations, SumProductMeanOfKnownInputs)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::Sum, v), 10.0);
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::Product, v), 24.0);
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::Mean, v), 2.5);
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::Max, v), 4.0);
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::Min, v), 1.0);
}

TEST(Aggregations, Median)
{
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::Median, {3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::Median, {4.0, 1.0, 2.0, 3.0}),
                     2.5);
}

TEST(Aggregations, MaxAbsKeepsSign)
{
    EXPECT_DOUBLE_EQ(aggregate(Aggregation::MaxAbs, {1.0, -5.0, 3.0}),
                     -5.0);
}

TEST(Aggregations, EmptyInputIsZero)
{
    for (int i = 0; i < static_cast<int>(Aggregation::NumAggregations);
         ++i) {
        EXPECT_DOUBLE_EQ(
            aggregate(static_cast<Aggregation>(i), {}), 0.0);
    }
}

TEST(Aggregations, NamesRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Aggregation::NumAggregations);
         ++i) {
        const auto a = static_cast<Aggregation>(i);
        EXPECT_EQ(aggregationFromName(aggregationName(a)), a);
    }
}

TEST(Aggregations, FitsInThreeBitField)
{
    EXPECT_LE(static_cast<int>(Aggregation::NumAggregations), 8);
}
