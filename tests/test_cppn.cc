/**
 * @file
 * Tests for the CPPN / HyperNEAT-style indirect encoding (the more
 * efficient genome representation Section III-D1 points at).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/cppn.hh"
#include "nn/feedforward.hh"

using namespace genesys;
using namespace genesys::nn;

namespace
{

SubstrateConfig
bigSubstrate()
{
    SubstrateConfig sub;
    sub.inputs = 16;
    sub.outputs = 4;
    sub.hiddenLayers = {12, 12};
    return sub;
}

neat::Genome
randomCppn(uint64_t seed, int mutations = 8)
{
    const auto cfg = cppnNeatConfig();
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(seed);
    auto g = neat::Genome::createNew(0, cfg, idx, rng);
    for (int i = 0; i < mutations; ++i)
        g.mutate(cfg, idx, rng);
    return g;
}

} // namespace

TEST(SubstrateConfigTest, CountsNodesAndConnections)
{
    const auto sub = bigSubstrate();
    EXPECT_EQ(sub.phenotypeNodes(), 4 + 12 + 12);
    EXPECT_EQ(sub.densePotentialConnections(),
              16 * 12 + 12 * 12 + 12 * 4);
}

TEST(SubstrateLayoutTest, CoordinatesInUnitSquare)
{
    const auto layout = substrateLayout(bigSubstrate());
    ASSERT_EQ(layout.layers.size(), 4u); // in, h1, h2, out
    for (const auto &sheet : layout.layers) {
        for (const auto &[x, y] : sheet) {
            EXPECT_GE(x, -1.0);
            EXPECT_LE(x, 1.0);
            EXPECT_GE(y, -1.0);
            EXPECT_LE(y, 1.0);
        }
    }
    // Input sheet at the bottom, outputs at the top.
    EXPECT_DOUBLE_EQ(layout.layers.front().front().second, -1.0);
    EXPECT_DOUBLE_EQ(layout.layers.back().front().second, 1.0);
}

TEST(CppnConfigTest, ValidAndGeometryFriendly)
{
    const auto cfg = cppnNeatConfig();
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.numInputs, 4);
    EXPECT_EQ(cfg.numOutputs, 1);
    EXPECT_GE(cfg.activation.options.size(), 4u);
}

TEST(ExpandCppn, ProducesValidPhenotype)
{
    const auto cfg = cppnNeatConfig();
    const auto sub = bigSubstrate();
    for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
        const auto cppn = randomCppn(seed);
        const auto phenotype = expandCppn(cppn, cfg, sub);
        neat::NeatConfig pheno_cfg;
        pheno_cfg.numInputs = sub.inputs;
        pheno_cfg.numOutputs = sub.outputs;
        phenotype.validate(pheno_cfg);
        EXPECT_EQ(phenotype.numNodeGenes(),
                  static_cast<size_t>(sub.phenotypeNodes()));
    }
}

TEST(ExpandCppn, PhenotypeIsEvaluable)
{
    const auto cfg = cppnNeatConfig();
    const auto sub = bigSubstrate();
    const auto phenotype = expandCppn(randomCppn(5), cfg, sub);
    neat::NeatConfig pheno_cfg;
    pheno_cfg.numInputs = sub.inputs;
    pheno_cfg.numOutputs = sub.outputs;
    const auto net = FeedForwardNetwork::create(phenotype, pheno_cfg);
    const auto out =
        net.activate(std::vector<double>(16, 0.5));
    ASSERT_EQ(out.size(), 4u);
    for (double v : out)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ExpandCppn, ThresholdPrunesConnections)
{
    const auto cfg = cppnNeatConfig();
    auto sub = bigSubstrate();
    const auto cppn = randomCppn(6);

    sub.weightThreshold = 0.05;
    const auto loose = expandCppn(cppn, cfg, sub);
    sub.weightThreshold = 0.8;
    const auto tight = expandCppn(cppn, cfg, sub);
    EXPECT_LE(tight.numConnectionGenes(), loose.numConnectionGenes());
    // Everything expressed is within the dense bound.
    EXPECT_LE(loose.numConnectionGenes(),
              static_cast<size_t>(sub.densePotentialConnections()));
}

TEST(ExpandCppn, WeightsBoundedByScale)
{
    const auto cfg = cppnNeatConfig();
    auto sub = bigSubstrate();
    sub.weightScale = 3.0;
    const auto phenotype = expandCppn(randomCppn(7), cfg, sub);
    for (const auto &[ck, cg] : phenotype.connections()) {
        EXPECT_LE(std::fabs(cg.weight), 3.0 + 1e-12);
        EXPECT_GT(std::fabs(cg.weight), 0.0);
    }
}

TEST(ExpandCppn, DeterministicForSameCppn)
{
    const auto cfg = cppnNeatConfig();
    const auto sub = bigSubstrate();
    const auto cppn = randomCppn(8);
    const auto a = expandCppn(cppn, cfg, sub);
    const auto b = expandCppn(cppn, cfg, sub);
    ASSERT_EQ(a.numConnectionGenes(), b.numConnectionGenes());
    for (const auto &[ck, cg] : a.connections())
        EXPECT_DOUBLE_EQ(b.connections().at(ck).weight, cg.weight);
}

TEST(ExpandCppn, IndirectEncodingShrinksStoredGenome)
{
    // The Section III-D1 motivation: the CPPN's Genome Buffer image
    // is far smaller than the phenotype it generates once substrates
    // get large.
    const auto cfg = cppnNeatConfig();
    SubstrateConfig sub;
    sub.inputs = 128; // an Atari-RAM-sized policy
    sub.outputs = 18;
    sub.hiddenLayers = {64};
    sub.weightThreshold = 0.1;
    const auto cppn = randomCppn(9);
    const auto phenotype = expandCppn(cppn, cfg, sub);

    const long stored = cppnStoredBytes(cppn);
    const long direct = phenotypeStoredBytes(phenotype);
    EXPECT_GT(direct, 4 * stored)
        << "CPPN " << stored << " B vs direct " << direct << " B";
}
