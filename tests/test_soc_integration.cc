/**
 * @file
 * SoC-level integration tests: end-to-end consistency between the
 * algorithmic run and the hardware model across configurations.
 */

#include <gtest/gtest.h>

#include "core/genesys.hh"

using namespace genesys;
using namespace genesys::core;

namespace
{

/** A short hardware-in-the-loop run. */
std::vector<GenerationReport>
shortRun(const std::string &env, hw::SocParams soc, uint64_t seed = 17,
         int gens = 3)
{
    SystemConfig cfg;
    cfg.envName = env;
    cfg.maxGenerations = gens;
    cfg.seed = seed;
    cfg.soc = soc;
    System sys(cfg);
    sys.run();
    return sys.reports();
}

} // namespace

TEST(SocIntegration, EvolutionEnergyScalesWithWorkload)
{
    hw::SocParams soc;
    const auto cartpole = shortRun("CartPole_v0", soc);
    const auto atari = shortRun("Amidar-ram-v0", soc);
    // The RAM workload breeds ~100x more genes per generation; its
    // evolution energy must dwarf CartPole's.
    double cart_e = 0.0, atari_e = 0.0;
    for (const auto &r : cartpole)
        cart_e += r.hw.evolutionEnergyJ;
    for (const auto &r : atari)
        atari_e += r.hw.evolutionEnergyJ;
    EXPECT_GT(atari_e, 20.0 * cart_e);
}

TEST(SocIntegration, FewerPesSlowEvolutionOnly)
{
    hw::SocParams big;
    big.numEvePe = 256;
    hw::SocParams small;
    small.numEvePe = 4;
    const auto rb = shortRun("MountainCar_v0", big);
    const auto rs = shortRun("MountainCar_v0", small);
    ASSERT_EQ(rb.size(), rs.size());
    for (size_t i = 0; i + 1 < rb.size(); ++i) {
        // (skip generations with empty traces at the run end)
        if (rb[i].algo.evolutionOps == 0)
            continue;
        EXPECT_GT(rs[i].hw.evolutionSeconds,
                  rb[i].hw.evolutionSeconds);
        // Inference untouched by the EvE PE count.
        EXPECT_DOUBLE_EQ(rs[i].hw.inferenceComputeSeconds,
                         rb[i].hw.inferenceComputeSeconds);
    }
}

TEST(SocIntegration, MulticastBeatsPointToPointOnEnergy)
{
    hw::SocParams mc;
    mc.noc = hw::NocTopology::MulticastTree;
    hw::SocParams p2p;
    p2p.noc = hw::NocTopology::PointToPoint;
    const auto rm = shortRun("AirRaid-ram-v0", mc);
    const auto rp = shortRun("AirRaid-ram-v0", p2p);
    double em = 0.0, ep = 0.0;
    for (const auto &r : rm)
        em += r.hw.evolutionEnergyJ;
    for (const auto &r : rp)
        ep += r.hw.evolutionEnergyJ;
    EXPECT_GT(ep, 1.5 * em);
}

TEST(SocIntegration, AlgorithmUnaffectedByHardwareConfig)
{
    // The SoC model observes the run; it must never change it.
    hw::SocParams a;
    a.numEvePe = 2;
    a.noc = hw::NocTopology::PointToPoint;
    hw::SocParams b;
    b.numEvePe = 512;
    const auto ra = shortRun("MountainCar_v0", a, 23);
    const auto rb = shortRun("MountainCar_v0", b, 23);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
        EXPECT_DOUBLE_EQ(ra[i].algo.bestFitness, rb[i].algo.bestFitness);
        EXPECT_EQ(ra[i].algo.totalGenes, rb[i].algo.totalGenes);
    }
}

TEST(SocIntegration, SmallBufferForcesDramTraffic)
{
    hw::SocParams tiny;
    tiny.sramKiB = 64; // 64 KiB cannot hold an Atari generation
    const auto reports = shortRun("AirRaid-ram-v0", tiny);
    bool spilled = false;
    for (const auto &r : reports) {
        if (r.hw.eve.dramBytes > 0)
            spilled = true;
    }
    EXPECT_TRUE(spilled);
}

TEST(SocIntegration, EnergyBreakdownsNonNegative)
{
    const auto reports = shortRun("LunarLander_v2", {});
    for (const auto &r : reports) {
        EXPECT_GE(r.hw.eve.sramEnergyJ, 0.0);
        EXPECT_GE(r.hw.eve.peEnergyJ, 0.0);
        EXPECT_GE(r.hw.eve.nocEnergyJ, 0.0);
        EXPECT_GE(r.hw.inferenceEnergyJ, 0.0);
        EXPECT_GE(r.hw.adam.utilization(), 0.0);
        EXPECT_LE(r.hw.adam.utilization(), 1.0);
    }
}
