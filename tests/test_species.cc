/**
 * @file
 * Tests for speciation and the distance cache (Section II-D).
 */

#include <gtest/gtest.h>

#include "neat/reproduction.hh"
#include "neat/species.hh"

using namespace genesys;
using namespace genesys::neat;

namespace
{

NeatConfig
speciesConfig()
{
    NeatConfig cfg;
    cfg.numInputs = 2;
    cfg.numOutputs = 1;
    cfg.populationSize = 20;
    cfg.compatibilityThreshold = 3.0;
    return cfg;
}

std::map<int, Genome>
makePopulation(const NeatConfig &cfg, int n, uint64_t seed)
{
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(seed);
    std::map<int, Genome> pop;
    for (int i = 0; i < n; ++i)
        pop.emplace(i, Genome::createNew(i, cfg, idx, rng));
    return pop;
}

} // namespace

TEST(DistanceCache, CachesSymmetricPairs)
{
    const auto cfg = speciesConfig();
    auto pop = makePopulation(cfg, 2, 1);
    DistanceCache cache(cfg);
    const double d1 = cache.distance(pop.at(0), pop.at(1));
    const double d2 = cache.distance(pop.at(1), pop.at(0));
    EXPECT_DOUBLE_EQ(d1, d2);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(SpeciesSet, EveryGenomeAssignedExactlyOnce)
{
    const auto cfg = speciesConfig();
    auto pop = makePopulation(cfg, 20, 2);
    SpeciesSet set(cfg);
    set.speciate(pop, 0);

    std::set<int> seen;
    for (const auto &[sk, sp] : set.species()) {
        for (int mk : sp.memberKeys) {
            EXPECT_TRUE(seen.insert(mk).second)
                << "genome " << mk << " in two species";
            EXPECT_EQ(set.speciesOf(mk), sk);
        }
    }
    EXPECT_EQ(seen.size(), pop.size());
}

TEST(SpeciesSet, IdenticalGenomesShareOneSpecies)
{
    auto cfg = speciesConfig();
    cfg.weight.initStdev = 0.0; // identical weights everywhere
    cfg.bias.initStdev = 0.0;
    auto pop = makePopulation(cfg, 10, 3);
    SpeciesSet set(cfg);
    set.speciate(pop, 0);
    EXPECT_EQ(set.count(), 1u);
}

TEST(SpeciesSet, DistantGenomesSplitSpecies)
{
    auto cfg = speciesConfig();
    cfg.compatibilityThreshold = 0.5;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(4);
    std::map<int, Genome> pop;
    // Two structurally different clusters.
    for (int i = 0; i < 5; ++i)
        pop.emplace(i, Genome::createNew(i, cfg, idx, rng));
    for (int i = 5; i < 10; ++i) {
        auto g = Genome::createNew(i, cfg, idx, rng);
        for (int j = 0; j < 4; ++j)
            g.mutateAddNode(cfg, idx, rng);
        pop.emplace(i, std::move(g));
    }
    SpeciesSet set(cfg);
    set.speciate(pop, 0);
    EXPECT_GE(set.count(), 2u);
}

TEST(SpeciesSet, SpeciesKeysStableAcrossGenerations)
{
    const auto cfg = speciesConfig();
    auto pop = makePopulation(cfg, 10, 5);
    SpeciesSet set(cfg);
    set.speciate(pop, 0);
    const auto keys_before = set.species();
    // Same population next generation: same species keys survive.
    set.speciate(pop, 1);
    for (const auto &[sk, sp] : set.species())
        EXPECT_TRUE(keys_before.count(sk));
}

TEST(SpeciesSet, RemoveDropsMembers)
{
    const auto cfg = speciesConfig();
    auto pop = makePopulation(cfg, 10, 6);
    SpeciesSet set(cfg);
    set.speciate(pop, 0);
    const int sk = set.species().begin()->first;
    const int member = set.species().at(sk).memberKeys.front();
    set.remove(sk);
    EXPECT_FALSE(set.species().count(sk));
    EXPECT_EQ(set.speciesOf(member), -1);
}

TEST(SpeciesSet, RepresentativeIsAMember)
{
    const auto cfg = speciesConfig();
    auto pop = makePopulation(cfg, 15, 7);
    SpeciesSet set(cfg);
    set.speciate(pop, 0);
    for (const auto &[sk, sp] : set.species()) {
        EXPECT_TRUE(std::find(sp.memberKeys.begin(), sp.memberKeys.end(),
                              sp.representative.key()) !=
                    sp.memberKeys.end());
    }
}

TEST(SpeciesSet, MemberFitnessesReadFromPopulation)
{
    const auto cfg = speciesConfig();
    auto pop = makePopulation(cfg, 5, 8);
    for (auto &[gk, g] : pop)
        g.setFitness(gk * 1.0);
    SpeciesSet set(cfg);
    set.speciate(pop, 0);
    double total = 0.0;
    for (const auto &[sk, sp] : set.species()) {
        for (double f : sp.memberFitnesses(pop))
            total += f;
    }
    EXPECT_DOUBLE_EQ(total, 0.0 + 1 + 2 + 3 + 4);
}

TEST(SpeciesSet, UnevaluatedMemberFitnessThrows)
{
    const auto cfg = speciesConfig();
    auto pop = makePopulation(cfg, 3, 9);
    SpeciesSet set(cfg);
    set.speciate(pop, 0);
    const auto &sp = set.species().begin()->second;
    EXPECT_ANY_THROW(sp.memberFitnesses(pop));
}
