/**
 * @file
 * Tests for the ADAM systolic-array model (Section IV-D).
 */

#include <gtest/gtest.h>

#include "hw/adam.hh"

using namespace genesys;
using namespace genesys::hw;
using genesys::nn::InferenceSchedule;
using genesys::nn::PackedLayer;

namespace
{

SocParams
defaultSoc()
{
    return {};
}

PackedLayer
layer(int m, int k, long weights)
{
    PackedLayer l;
    l.numNodes = m;
    l.vectorLen = k;
    l.weights = weights;
    return l;
}

} // namespace

TEST(AdamLayer, SingleTileTiming)
{
    AdamEngine adam(defaultSoc());
    const auto s = adam.simulateLayer(layer(16, 16, 100));
    // One 32x32 tile: K-slice 16 + fill 32 + drain 32.
    EXPECT_EQ(s.cycles, 16 + 32 + 32);
    EXPECT_EQ(s.usefulMacs, 100);
    EXPECT_EQ(s.arrayMacs, 256);
    EXPECT_NEAR(s.utilization(), 100.0 / 256.0, 1e-12);
}

TEST(AdamLayer, TilingLargeMatrices)
{
    AdamEngine adam(defaultSoc());
    const auto s = adam.simulateLayer(layer(64, 128, 1000));
    // ceil(64/32)=2 x ceil(128/32)=4 tiles, each 32+32+32 cycles.
    EXPECT_EQ(s.cycles, 2 * 4 * (32 + 32 + 32));
}

TEST(AdamLayer, EmptyLayerIsFree)
{
    AdamEngine adam(defaultSoc());
    const auto s = adam.simulateLayer(layer(0, 0, 0));
    EXPECT_EQ(s.cycles, 0);
    EXPECT_EQ(s.arrayMacs, 0);
}

TEST(AdamLayer, VectorizeCostIsSerialInK)
{
    AdamEngine adam(defaultSoc());
    const auto s = adam.simulateLayer(layer(8, 50, 200));
    EXPECT_EQ(s.vectorizeCycles, 50 * AdamEngine::cpuCyclesPerPack);
}

TEST(AdamGenome, AccumulatesLayers)
{
    AdamEngine adam(defaultSoc());
    InferenceSchedule sched;
    sched.layers = {layer(18, 128, 2304), layer(4, 18, 72)};
    const auto s = adam.simulateGenome(sched);
    EXPECT_EQ(s.layers, 2);
    EXPECT_EQ(s.usefulMacs, 2376);
    EXPECT_EQ(s.sramReads, 2304 + 128 + 72 + 18);
    EXPECT_EQ(s.sramWrites, 18 + 4);
    EXPECT_GT(s.cycles, 0);
}

TEST(AdamInference, WeightReuseAcrossPasses)
{
    AdamEngine adam(defaultSoc());
    InferenceSchedule sched;
    sched.layers = {layer(18, 128, 2304)};
    const auto one = adam.simulateInference(sched, 1);
    const auto ten = adam.simulateInference(sched, 10);
    // Compute scales linearly...
    EXPECT_EQ(ten.cycles, 10 * one.cycles);
    EXPECT_EQ(ten.usefulMacs, 10 * one.usefulMacs);
    // ...but weights are fetched once per generation (Section IV-A):
    // passes 2..10 only re-read the packed input vectors.
    EXPECT_EQ(ten.sramReads, one.sramReads + 9 * 128);
}

TEST(AdamInference, UtilizationReflectsSparsity)
{
    AdamEngine adam(defaultSoc());
    InferenceSchedule dense, sparse;
    dense.layers = {layer(32, 32, 1024)};
    sparse.layers = {layer(32, 32, 64)};
    EXPECT_DOUBLE_EQ(adam.simulateGenome(dense).utilization(), 1.0);
    EXPECT_NEAR(adam.simulateGenome(sparse).utilization(), 64.0 / 1024.0,
                1e-12);
}

TEST(AdamInference, EnergyComponentsPositive)
{
    AdamEngine adam(defaultSoc());
    EnergyModel energy;
    InferenceSchedule sched;
    sched.layers = {layer(18, 128, 2304)};
    const auto s = adam.simulateInference(sched, 5);
    EXPECT_GT(s.macEnergyJ(energy), 0.0);
    EXPECT_GT(s.sramEnergyJ(energy), 0.0);
    EXPECT_GT(s.cpuEnergyJ(energy), 0.0);
    EXPECT_NEAR(s.totalEnergyJ(energy),
                s.macEnergyJ(energy) + s.sramEnergyJ(energy) +
                    s.cpuEnergyJ(energy),
                1e-18);
}

TEST(AdamInference, SmallerArrayNeedsMoreCycles)
{
    SocParams big = defaultSoc();
    SocParams small = defaultSoc();
    small.adamRows = small.adamCols = 8;
    InferenceSchedule sched;
    sched.layers = {layer(64, 128, 4000)};
    EXPECT_GT(AdamEngine(small).simulateGenome(sched).cycles,
              AdamEngine(big).simulateGenome(sched).cycles);
}
