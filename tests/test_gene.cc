/**
 * @file
 * Tests for node and connection genes.
 */

#include <gtest/gtest.h>

#include "neat/gene.hh"

using namespace genesys;
using namespace genesys::neat;

namespace
{

NeatConfig
testConfig()
{
    NeatConfig cfg;
    cfg.numInputs = 2;
    cfg.numOutputs = 1;
    return cfg;
}

} // namespace

TEST(NodeGene, CreateNewUsesSpecs)
{
    auto cfg = testConfig();
    cfg.bias.initMean = 5.0;
    cfg.bias.initStdev = 0.0;
    cfg.response.initMean = 1.0;
    cfg.response.initStdev = 0.0;
    XorWow rng(1);
    const auto g = NodeGene::createNew(3, cfg, rng);
    EXPECT_EQ(g.key, 3);
    EXPECT_DOUBLE_EQ(g.bias, 5.0);
    EXPECT_DOUBLE_EQ(g.response, 1.0);
    EXPECT_EQ(g.activation, Activation::Sigmoid);
    EXPECT_EQ(g.aggregation, Aggregation::Sum);
}

TEST(NodeGene, DistanceComponents)
{
    NodeGene a, b;
    a.key = b.key = 1;
    a.bias = 1.0;
    b.bias = 3.0;
    a.response = b.response = 1.0;
    EXPECT_DOUBLE_EQ(a.distance(b), 2.0);
    b.activation = Activation::ReLU;
    EXPECT_DOUBLE_EQ(a.distance(b), 3.0);
    b.aggregation = Aggregation::Max;
    EXPECT_DOUBLE_EQ(a.distance(b), 4.0);
    EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
}

TEST(NodeGene, DistanceSymmetric)
{
    NodeGene a, b;
    a.bias = -2.0;
    b.bias = 1.5;
    a.response = 0.5;
    b.response = 2.0;
    EXPECT_DOUBLE_EQ(a.distance(b), b.distance(a));
}

TEST(NodeGene, CrossoverPicksFromParents)
{
    NodeGene a, b;
    a.key = b.key = 2;
    a.bias = 1.0;
    b.bias = -1.0;
    a.response = 10.0;
    b.response = -10.0;
    XorWow rng(2);
    for (int i = 0; i < 100; ++i) {
        const auto c = a.crossover(b, rng);
        EXPECT_EQ(c.key, 2);
        EXPECT_TRUE(c.bias == 1.0 || c.bias == -1.0);
        EXPECT_TRUE(c.response == 10.0 || c.response == -10.0);
    }
}

TEST(NodeGene, CrossoverBiasSkewsSelection)
{
    NodeGene a, b;
    a.key = b.key = 2;
    a.bias = 1.0;
    b.bias = -1.0;
    XorWow rng(3);
    int from_a = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (a.crossover(b, rng, 0.9).bias == 1.0)
            ++from_a;
    }
    EXPECT_NEAR(static_cast<double>(from_a) / n, 0.9, 0.02);
}

TEST(ConnectionGene, CreateNewKeyAndDefaults)
{
    auto cfg = testConfig();
    cfg.weight.initMean = 0.0;
    cfg.weight.initStdev = 0.0;
    XorWow rng(4);
    const auto g = ConnectionGene::createNew({-1, 0}, cfg, rng);
    EXPECT_EQ(g.key, (ConnKey{-1, 0}));
    EXPECT_DOUBLE_EQ(g.weight, 0.0);
    EXPECT_TRUE(g.enabled);
}

TEST(ConnectionGene, DistanceIncludesEnableMismatch)
{
    ConnectionGene a, b;
    a.weight = 1.0;
    b.weight = 3.5;
    a.enabled = true;
    b.enabled = false;
    EXPECT_DOUBLE_EQ(a.distance(b), 3.5);
    b.enabled = true;
    EXPECT_DOUBLE_EQ(a.distance(b), 2.5);
}

TEST(ConnectionGene, CrossoverAttributesFromEitherParent)
{
    ConnectionGene a, b;
    a.key = b.key = {1, 2};
    a.weight = 4.0;
    b.weight = -4.0;
    a.enabled = true;
    b.enabled = false;
    XorWow rng(5);
    bool saw_a = false, saw_b = false;
    for (int i = 0; i < 100; ++i) {
        const auto c = a.crossover(b, rng);
        EXPECT_EQ(c.key, a.key);
        if (c.weight == 4.0)
            saw_a = true;
        if (c.weight == -4.0)
            saw_b = true;
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

TEST(ConnectionGene, MutateKeepsWeightBounded)
{
    auto cfg = testConfig();
    cfg.weight.minValue = -5.0;
    cfg.weight.maxValue = 5.0;
    cfg.weight.mutateRate = 1.0;
    cfg.weight.mutatePower = 10.0;
    XorWow rng(6);
    ConnectionGene g;
    g.key = {0, 1};
    for (int i = 0; i < 500; ++i) {
        g.mutate(cfg, rng);
        EXPECT_GE(g.weight, -5.0);
        EXPECT_LE(g.weight, 5.0);
    }
}
