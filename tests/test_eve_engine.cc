/**
 * @file
 * Tests for the trace-driven EvE array simulator: the properties
 * behind Fig 11(b,c) — multicast read reduction, runtime scaling with
 * PE count, bank-bandwidth limits, and energy accounting.
 */

#include <gtest/gtest.h>

#include "hw/eve.hh"

using namespace genesys;
using namespace genesys::hw;

namespace
{

/**
 * A paper-shaped trace: `children` bred from a small survivor pool so
 * parent reuse is high (Fig 4(c)).
 */
neat::EvolutionTrace
paperTrace(int children, int genes_per_genome, int survivors,
           uint64_t seed)
{
    neat::EvolutionTrace t;
    t.generation = 1;
    XorWow rng(seed);
    for (int i = 0; i < children; ++i) {
        neat::ChildRecord c;
        c.childKey = 1000 + i;
        c.parent1Key = static_cast<int>(
            rng.uniformInt(static_cast<uint32_t>(survivors)));
        c.parent2Key = static_cast<int>(
            rng.uniformInt(static_cast<uint32_t>(survivors)));
        c.parent1Genes = static_cast<size_t>(genes_per_genome);
        c.parent2Genes = static_cast<size_t>(genes_per_genome);
        c.alignedStreamLen =
            static_cast<size_t>(genes_per_genome * 1.2);
        c.childNodeGenes = 4;
        c.childConnGenes = static_cast<size_t>(genes_per_genome) - 4;
        c.ops.crossoverOps = genes_per_genome;
        c.ops.perturbOps = genes_per_genome;
        t.children.push_back(c);
    }
    return t;
}

EveGenStats
simulate(int num_pe, NocTopology noc, const neat::EvolutionTrace &t)
{
    SocParams soc;
    soc.numEvePe = num_pe;
    soc.noc = noc;
    static EnergyModel energy;
    return EveEngine(soc, energy).simulateGeneration(t);
}

} // namespace

TEST(EveEngine, WaveCountMatchesPeCount)
{
    const auto t = paperTrace(150, 100, 6, 1);
    EXPECT_EQ(simulate(256, NocTopology::MulticastTree, t).waves, 1);
    EXPECT_EQ(simulate(50, NocTopology::MulticastTree, t).waves, 3);
    EXPECT_EQ(simulate(2, NocTopology::MulticastTree, t).waves, 75);
}

TEST(EveEngine, RuntimeFallsWithMorePes)
{
    const auto t = paperTrace(150, 500, 6, 2);
    long prev = LONG_MAX;
    for (int pe : {2, 4, 8, 16, 32, 64, 128, 256}) {
        const long cycles =
            simulate(pe, NocTopology::MulticastTree, t).cycles;
        EXPECT_LE(cycles, prev) << pe << " PEs";
        prev = cycles;
    }
}

TEST(EveEngine, RuntimeTapersAtPopulationLimit)
{
    // "The tapering off of the trends at 256 PEs is due to ...
    // population size of 150" (Section VI-D).
    const auto t = paperTrace(150, 500, 6, 3);
    const long at256 = simulate(256, NocTopology::MulticastTree, t).cycles;
    const long at512 = simulate(512, NocTopology::MulticastTree, t).cycles;
    EXPECT_EQ(at256, at512);
}

TEST(EveEngine, MulticastCutsSramReads)
{
    const auto t = paperTrace(150, 500, 4, 4);
    const auto p2p = simulate(256, NocTopology::PointToPoint, t);
    const auto mc = simulate(256, NocTopology::MulticastTree, t);
    // Fig 11(b): >100x reduction with high parent reuse at high PE
    // counts. With 4 survivors serving 150 children: ~75x-ish.
    EXPECT_GT(p2p.sramReads, 30 * mc.sramReads);
    EXPECT_EQ(p2p.geneDeliveries, mc.geneDeliveries);
}

TEST(EveEngine, MulticastSavingsSmallAtLowPeCount)
{
    const auto t = paperTrace(150, 500, 4, 5);
    const auto p2p = simulate(2, NocTopology::PointToPoint, t);
    const auto mc = simulate(2, NocTopology::MulticastTree, t);
    // Only 2 children per wave: at most 2x sharing.
    EXPECT_LT(p2p.sramReads, 3 * mc.sramReads);
}

TEST(EveEngine, SramEnergyDropsWithPeCount)
{
    // Fig 11(c): "almost monotonic improvement in energy efficiency
    // as more EvE PEs are added" (a consequence of GLR).
    const auto t = paperTrace(150, 500, 6, 6);
    double prev = 1e18;
    for (int pe : {2, 8, 32, 128, 256}) {
        const double e =
            simulate(pe, NocTopology::MulticastTree, t).sramEnergyJ;
        EXPECT_LE(e, prev * 1.02) << pe << " PEs";
        prev = e;
    }
}

TEST(EveEngine, PointToPointBecomesBandwidthBound)
{
    const auto t = paperTrace(150, 500, 6, 7);
    const auto p2p = simulate(256, NocTopology::PointToPoint, t);
    // 256 PEs demanding 2 streams each >> 48 banks: the wave is
    // stretched by the SRAM bandwidth.
    const auto mc = simulate(256, NocTopology::MulticastTree, t);
    EXPECT_GT(p2p.cycles, mc.cycles);
}

TEST(EveEngine, ElitesCostNothing)
{
    auto t = paperTrace(10, 100, 2, 8);
    const auto base = simulate(16, NocTopology::MulticastTree, t);
    neat::ChildRecord elite;
    elite.childKey = 9999;
    elite.parent1Key = elite.parent2Key = 9999;
    elite.isElite = true;
    elite.childNodeGenes = 4;
    elite.childConnGenes = 96;
    t.children.push_back(elite);
    const auto with_elite = simulate(16, NocTopology::MulticastTree, t);
    EXPECT_EQ(base.cycles, with_elite.cycles);
    EXPECT_EQ(base.sramReads, with_elite.sramReads);
    EXPECT_EQ(base.sramWrites, with_elite.sramWrites);
}

TEST(EveEngine, WritesMatchChildGenes)
{
    const auto t = paperTrace(20, 100, 3, 9);
    const auto s = simulate(8, NocTopology::MulticastTree, t);
    EXPECT_EQ(s.sramWrites, t.totalChildGenes());
}

TEST(EveEngine, OpsMatchTrace)
{
    const auto t = paperTrace(20, 100, 3, 10);
    const auto s = simulate(8, NocTopology::MulticastTree, t);
    EXPECT_EQ(s.peOps, t.totalOps());
}

TEST(EveEngine, UtilizationBounded)
{
    const auto t = paperTrace(150, 300, 6, 11);
    for (int pe : {2, 32, 256}) {
        const auto s = simulate(pe, NocTopology::MulticastTree, t);
        EXPECT_GT(s.peUtilization, 0.0);
        EXPECT_LE(s.peUtilization, 1.0);
    }
}

TEST(EveEngine, DramSpillOnOversizedGeneration)
{
    const auto t = paperTrace(10, 100, 2, 12);
    SocParams soc;
    soc.sramKiB = 4; // tiny buffer
    EnergyModel energy;
    EveEngine eve(soc, energy);
    const auto s = eve.simulateGeneration(t, 100 * 1024);
    EXPECT_GT(s.dramBytes, 0);
    EXPECT_GT(s.dramEnergyJ, 0.0);
}

TEST(EveEngine, EmptyTraceIsFree)
{
    neat::EvolutionTrace t;
    const auto s = simulate(64, NocTopology::MulticastTree, t);
    EXPECT_EQ(s.cycles, 0);
    EXPECT_EQ(s.sramReads, 0);
    EXPECT_DOUBLE_EQ(s.totalEnergyJ(), 0.0);
}

TEST(EveEngine, EnergyBreakdownSumsToTotal)
{
    const auto t = paperTrace(150, 400, 6, 13);
    const auto s = simulate(64, NocTopology::MulticastTree, t);
    EXPECT_NEAR(s.totalEnergyJ(),
                s.sramEnergyJ + s.peEnergyJ + s.nocEnergyJ +
                    s.dramEnergyJ,
                1e-18);
}
