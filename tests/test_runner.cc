/**
 * @file
 * Tests for action decoding and the episode runner.
 */

#include <gtest/gtest.h>

#include "env/cartpole.hh"
#include "env/mountain_car.hh"
#include "env/runner.hh"

using namespace genesys;
using namespace genesys::env;

TEST(DecodeAction, BinaryThreshold)
{
    const ActionSpace space{ActionSpace::Kind::Discrete, 2, 0, 0};
    EXPECT_EQ(decodeAction(space, {0.4}).discrete, 0);
    EXPECT_EQ(decodeAction(space, {0.6}).discrete, 1);
}

TEST(DecodeAction, ArgmaxOverDiscreteOutputs)
{
    const ActionSpace space{ActionSpace::Kind::Discrete, 4, 0, 0};
    EXPECT_EQ(decodeAction(space, {0.1, 0.9, 0.3, 0.2}).discrete, 1);
    EXPECT_EQ(decodeAction(space, {0.9, 0.1, 0.3, 0.2}).discrete, 0);
    EXPECT_EQ(decodeAction(space, {0.1, 0.2, 0.3, 0.9}).discrete, 3);
}

TEST(DecodeAction, ArgmaxTieBreaksLowestIndex)
{
    const ActionSpace space{ActionSpace::Kind::Discrete, 3, 0, 0};
    EXPECT_EQ(decodeAction(space, {0.5, 0.5, 0.5}).discrete, 0);
}

TEST(DecodeAction, ContinuousAffineMapAndClamp)
{
    const ActionSpace space{ActionSpace::Kind::Continuous, 2, -1.0, 1.0};
    const auto a = decodeAction(space, {0.0, 1.0});
    ASSERT_EQ(a.continuous.size(), 2u);
    EXPECT_DOUBLE_EQ(a.continuous[0], -1.0);
    EXPECT_DOUBLE_EQ(a.continuous[1], 1.0);
    // Outputs beyond [0,1] clamp to bounds.
    const auto b = decodeAction(space, {-3.0, 5.0});
    EXPECT_DOUBLE_EQ(b.continuous[0], -1.0);
    EXPECT_DOUBLE_EQ(b.continuous[1], 1.0);
}

TEST(DecodeAction, MidpointMapsToCenter)
{
    const ActionSpace space{ActionSpace::Kind::Continuous, 1, -2.0, 4.0};
    EXPECT_DOUBLE_EQ(decodeAction(space, {0.5}).continuous[0], 1.0);
}

TEST(DecodeAction, TooFewOutputsThrows)
{
    const ActionSpace space{ActionSpace::Kind::Discrete, 4, 0, 0};
    EXPECT_ANY_THROW(decodeAction(space, {0.1, 0.2}));
}

TEST(EpisodeRunner, DeterministicEvaluation)
{
    CartPole env;
    auto cfg = configForEnvironment(env);
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(1);
    const auto g = neat::Genome::createNew(0, cfg, idx, rng);

    EpisodeRunner r1(env, 42, 2), r2(env, 42, 2);
    EXPECT_DOUBLE_EQ(r1.evaluate(g, cfg), r2.evaluate(g, cfg));
}

TEST(EpisodeRunner, CountsInferencesAndMacs)
{
    CartPole env;
    auto cfg = configForEnvironment(env);
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(2);
    const auto g = neat::Genome::createNew(0, cfg, idx, rng);
    const auto net = nn::FeedForwardNetwork::create(g, cfg);
    EpisodeRunner runner(env, 3, 1);
    const auto res = runner.runEpisode(net, 17);
    EXPECT_EQ(res.inferences, res.steps);
    EXPECT_EQ(res.macs, res.steps * net.macsPerInference());
    EXPECT_GT(res.steps, 0);
}

TEST(ConfigForEnvironment, MatchesSpaces)
{
    MountainCar env;
    const auto cfg = configForEnvironment(env);
    EXPECT_EQ(cfg.numInputs, 2);
    EXPECT_EQ(cfg.numOutputs, 3);
    EXPECT_EQ(cfg.populationSize, 150);
    EXPECT_DOUBLE_EQ(cfg.fitnessThreshold, env.targetFitness());
    // Paper setup: initial weights are all zero (Section III-B).
    EXPECT_DOUBLE_EQ(cfg.weight.initMean, 0.0);
    EXPECT_DOUBLE_EQ(cfg.weight.initStdev, 0.0);
}

TEST(MakeEnvironment, UnknownNameThrows)
{
    EXPECT_ANY_THROW(makeEnvironment("Pong-v0"));
}

TEST(MakeEnvironment, AllNamesConstructible)
{
    for (const auto &name : environmentNames()) {
        auto env = makeEnvironment(name);
        EXPECT_EQ(env->name(), name);
    }
}
