/**
 * @file
 * Tests for the extension features: power/clock gating (Section VI-D
 * discussion), recurrent phenotypes, and the ES weight tuner (Future
 * Directions hybrid mode).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/energy_model.hh"
#include "neat/population.hh"
#include "neat/weight_tuner.hh"
#include "nn/recurrent.hh"

using namespace genesys;
using namespace genesys::neat;

// --- power gating ----------------------------------------------------------

TEST(GatedPower, FullDutyEqualsRoofline)
{
    hw::EnergyModel m;
    hw::SocParams soc;
    EXPECT_NEAR(m.gatedPower(soc, 1.0).totalMw(),
                m.rooflinePower(soc).totalMw(), 1e-9);
}

TEST(GatedPower, IdleSocSipsPower)
{
    hw::EnergyModel m;
    hw::SocParams soc;
    const auto idle = m.gatedPower(soc, 0.0);
    // Everything but the M0 gated to residual leakage.
    EXPECT_LT(idle.totalMw(), 50.0);
    EXPECT_DOUBLE_EQ(idle.m0Mw, m.rooflinePower(soc).m0Mw);
}

TEST(GatedPower, MonotoneInDuty)
{
    hw::EnergyModel m;
    hw::SocParams soc;
    double prev = 0.0;
    for (double d : {0.0, 0.01, 0.1, 0.5, 1.0}) {
        const double p = m.gatedPower(soc, d).totalMw();
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(GatedPower, RejectsBadDuty)
{
    hw::EnergyModel m;
    hw::SocParams soc;
    EXPECT_ANY_THROW(m.gatedPower(soc, -0.1));
    EXPECT_ANY_THROW(m.gatedPower(soc, 1.1));
}

// --- recurrent networks ------------------------------------------------------

namespace
{

NeatConfig
recConfig(int inputs = 1, int outputs = 1)
{
    NeatConfig cfg;
    cfg.numInputs = inputs;
    cfg.numOutputs = outputs;
    cfg.feedForward = false;
    return cfg;
}

/** Output node 0 with a self-loop of weight w plus input -1. */
Genome
selfLoopGenome(double w_self, double w_in)
{
    Genome g(0);
    NodeGene out;
    out.key = 0;
    out.activation = Activation::Identity;
    g.mutableNodes().emplace(0, out);
    ConnectionGene self;
    self.key = {0, 0};
    self.weight = w_self;
    ConnectionGene in;
    in.key = {-1, 0};
    in.weight = w_in;
    g.mutableConnections().emplace(self.key, self);
    g.mutableConnections().emplace(in.key, in);
    return g;
}

} // namespace

TEST(Recurrent, SelfLoopIntegratesInput)
{
    const auto cfg = recConfig();
    auto net = nn::RecurrentNetwork::create(selfLoopGenome(1.0, 1.0),
                                            cfg);
    // y[t] = y[t-1] + x[t] -> a running sum.
    EXPECT_NEAR(net.activate({1.0})[0], 1.0, 1e-12);
    EXPECT_NEAR(net.activate({1.0})[0], 2.0, 1e-12);
    EXPECT_NEAR(net.activate({1.0})[0], 3.0, 1e-12);
}

TEST(Recurrent, ResetClearsState)
{
    const auto cfg = recConfig();
    auto net = nn::RecurrentNetwork::create(selfLoopGenome(1.0, 1.0),
                                            cfg);
    net.activate({5.0});
    net.activate({5.0});
    net.reset();
    EXPECT_NEAR(net.activate({1.0})[0], 1.0, 1e-12);
}

TEST(Recurrent, DecayingMemory)
{
    const auto cfg = recConfig();
    auto net = nn::RecurrentNetwork::create(selfLoopGenome(0.5, 1.0),
                                            cfg);
    net.activate({1.0}); // 1
    net.activate({0.0}); // 0.5
    EXPECT_NEAR(net.activate({0.0})[0], 0.25, 1e-12);
}

TEST(Recurrent, MatchesFeedForwardOnAcyclicGraphAtSteadyState)
{
    NeatConfig cfg;
    cfg.numInputs = 2;
    cfg.numOutputs = 1;
    // Deterministic two-level DAG: -1,-2 -> hidden 1 -> out 0, plus
    // -2 -> 0 (all nodes reachable, so the feed-forward and the
    // settled recurrent semantics agree).
    Genome g(0);
    NodeGene out;
    out.key = 0;
    out.bias = 0.3;
    NodeGene hid;
    hid.key = 1;
    hid.bias = -0.2;
    g.mutableNodes().emplace(0, out);
    g.mutableNodes().emplace(1, hid);
    auto conn = [&g](int a, int b, double w) {
        ConnectionGene c;
        c.key = {a, b};
        c.weight = w;
        g.mutableConnections().emplace(c.key, c);
    };
    conn(-1, 1, 0.8);
    conn(-2, 1, -0.6);
    conn(1, 0, 1.2);
    conn(-2, 0, 0.4);

    const auto ff = nn::FeedForwardNetwork::create(g, cfg);
    auto rec = nn::RecurrentNetwork::create(g, cfg);

    const std::vector<double> x{0.3, -0.7};
    const double expected = ff.activate(x)[0];
    // Hold the input; a DAG settles to the feed-forward value after
    // at most depth ticks.
    double got = 0.0;
    for (int t = 0; t < 12; ++t)
        got = rec.activate(x)[0];
    EXPECT_NEAR(got, expected, 1e-9);
}

TEST(Recurrent, MutatedCyclicGenomesEvaluateFinite)
{
    auto cfg = recConfig(3, 2);
    cfg.connAddProb = 0.6;
    cfg.nodeAddProb = 0.4;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(4);
    auto g = Genome::createNew(0, cfg, idx, rng);
    for (int i = 0; i < 30; ++i)
        g.mutate(cfg, idx, rng);
    auto net = nn::RecurrentNetwork::create(g, cfg);
    for (int t = 0; t < 50; ++t) {
        for (double v : net.activate({0.5, -0.5, 1.0}))
            EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(Recurrent, FeedForwardFalseAllowsCyclesInMutation)
{
    auto cfg = recConfig(2, 1);
    cfg.feedForward = false;
    cfg.connAddProb = 1.0;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(5);
    auto g = Genome::createNew(0, cfg, idx, rng);
    for (int i = 0; i < 5; ++i)
        g.mutateAddNode(cfg, idx, rng);
    // With the constraint off, many add-connection attempts should
    // eventually create at least one cycle.
    bool has_cycle = false;
    for (int i = 0; i < 300 && !has_cycle; ++i) {
        g.mutateAddConnection(cfg, rng);
        for (const auto &[ck, cg] : g.connections()) {
            auto rest = g.connections();
            rest.erase(ck);
            if (Genome::createsCycle(rest, ck)) {
                has_cycle = true;
                break;
            }
        }
    }
    EXPECT_TRUE(has_cycle);
}

// --- weight tuner --------------------------------------------------------------

namespace
{

/** Quadratic bowl over the first connection weight: max at w = 2. */
double
bowlFitness(const Genome &g)
{
    const double w = g.connections().begin()->second.weight;
    return -(w - 2.0) * (w - 2.0);
}

} // namespace

TEST(WeightTuner, ClimbsAQuadraticBowl)
{
    NeatConfig cfg;
    cfg.numInputs = 1;
    cfg.numOutputs = 1;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(6);
    auto g = Genome::createNew(0, cfg, idx, rng);

    WeightTunerConfig tc;
    tc.iterations = 60;
    WeightTuner tuner(cfg, tc);
    const auto res = tuner.tune(g, bowlFitness, rng);

    EXPECT_GT(res.bestFitness, res.initialFitness);
    EXPECT_NEAR(res.best.connections().begin()->second.weight, 2.0,
                0.1);
    EXPECT_EQ(res.evaluations, 1 + tc.iterations * tc.offspring);
}

TEST(WeightTuner, PreservesTopology)
{
    NeatConfig cfg;
    cfg.numInputs = 2;
    cfg.numOutputs = 2;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(7);
    auto g = Genome::createNew(0, cfg, idx, rng);
    g.mutateAddNode(cfg, idx, rng);

    WeightTuner tuner(cfg);
    const auto res = tuner.tune(
        g, [](const Genome &) { return 0.0; }, rng);
    EXPECT_EQ(res.best.numNodeGenes(), g.numNodeGenes());
    EXPECT_EQ(res.best.numConnectionGenes(), g.numConnectionGenes());
    for (const auto &[ck, cg] : g.connections())
        EXPECT_TRUE(res.best.connections().count(ck));
}

TEST(WeightTuner, RespectsAttributeBounds)
{
    NeatConfig cfg;
    cfg.numInputs = 1;
    cfg.numOutputs = 1;
    cfg.weight.minValue = -1.0;
    cfg.weight.maxValue = 1.0;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(8);
    auto g = Genome::createNew(0, cfg, idx, rng);

    WeightTunerConfig tc;
    tc.sigma = 5.0; // violent perturbations
    tc.iterations = 20;
    WeightTuner tuner(cfg, tc);
    // Reward large weights: the tuner should saturate at the bound.
    const auto res = tuner.tune(
        g,
        [](const Genome &gg) {
            return gg.connections().begin()->second.weight;
        },
        rng);
    EXPECT_LE(res.best.connections().begin()->second.weight, 1.0);
    EXPECT_NEAR(res.best.connections().begin()->second.weight, 1.0,
                1e-9);
}

TEST(WeightTuner, ImprovesEvolvedXorSolution)
{
    // Topology-search-then-tune, the Future Directions hybrid: evolve
    // XOR briefly, freeze the best topology, tune weights only.
    NeatConfig cfg;
    cfg.numInputs = 2;
    cfg.numOutputs = 1;
    cfg.populationSize = 80;
    cfg.fitnessThreshold = 10.0; // never met: we want a partial genome

    auto xor_fitness = [&cfg](const Genome &g) {
        static const double xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
        static const double ys[4] = {0, 1, 1, 0};
        const auto net = nn::FeedForwardNetwork::create(g, cfg);
        double f = 4.0;
        for (int i = 0; i < 4; ++i) {
            const double e = net.activate({xs[i][0], xs[i][1]})[0] -
                             ys[i];
            f -= e * e;
        }
        return f;
    };

    Population pop(cfg, 9);
    for (int i = 0; i < 8; ++i)
        pop.step(xor_fitness);
    const Genome seed = pop.bestGenome();

    XorWow rng(10);
    WeightTunerConfig tc;
    tc.iterations = 40;
    WeightTuner tuner(cfg, tc);
    const auto res = tuner.tune(seed, xor_fitness, rng);
    EXPECT_GE(res.bestFitness, res.initialFitness);
}

TEST(WeightTuner, DeterministicGivenRng)
{
    NeatConfig cfg;
    cfg.numInputs = 1;
    cfg.numOutputs = 1;
    NodeIndexer idx(cfg.numOutputs);
    XorWow grng(11);
    auto g = Genome::createNew(0, cfg, idx, grng);
    WeightTuner tuner(cfg);
    XorWow r1(42), r2(42);
    const auto a = tuner.tune(g, bowlFitness, r1);
    const auto b = tuner.tune(g, bowlFitness, r2);
    EXPECT_DOUBLE_EQ(a.bestFitness, b.bestFitness);
}
