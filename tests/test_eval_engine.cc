/**
 * @file
 * Tests for the parallel batched evaluation engine (src/exec/):
 * thread-pool coverage, serial/parallel bit-equality, determinism
 * across repeated runs, and env-pool episode isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/genesys.hh"
#include "exec/eval_engine.hh"
#include "exec/env_pool.hh"
#include "exec/thread_pool.hh"

using namespace genesys;
using namespace genesys::exec;

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);

    constexpr std::size_t kItems = 1000;
    std::vector<std::atomic<int>> hits(kItems);
    pool.parallelFor(kItems, [&](std::size_t i, int worker) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, 4);
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kItems; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    int count = 0;
    pool.parallelFor(17, [&](std::size_t, int worker) {
        EXPECT_EQ(worker, 0);
        ++count;
    });
    EXPECT_EQ(count, 17);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotInterfere)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(round + 1, [&](std::size_t i, int) {
            sum.fetch_add(static_cast<int>(i) + 1);
        });
        const int n = round + 1;
        EXPECT_EQ(sum.load(), n * (n + 1) / 2);
    }
}

// --- helpers ----------------------------------------------------------------

namespace
{

/** A small evaluated-once population for engine-level tests. */
std::pair<neat::NeatConfig, std::vector<neat::Genome>>
makeGenomes(int count, uint64_t seed)
{
    auto env = env::makeEnvironment("CartPole_v0");
    neat::NeatConfig cfg = env::configForEnvironment(*env);
    cfg.populationSize = count;
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(seed);
    std::vector<neat::Genome> genomes;
    genomes.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        auto g = neat::Genome::createNew(i, cfg, idx, rng);
        for (int m = 0; m < 8; ++m)
            g.mutate(cfg, idx, rng);
        genomes.push_back(std::move(g));
    }
    return {cfg, std::move(genomes)};
}

std::vector<neat::GenomeHandle>
handlesOf(const std::vector<neat::Genome> &genomes)
{
    std::vector<neat::GenomeHandle> hs;
    hs.reserve(genomes.size());
    for (size_t i = 0; i < genomes.size(); ++i)
        hs.push_back({static_cast<int>(i), &genomes[i]});
    return hs;
}

std::vector<GenomeEvalResult>
evaluateWithThreads(int threads, const neat::NeatConfig &cfg,
                    const std::vector<neat::Genome> &genomes,
                    int episodes = 3)
{
    EvalEngineConfig ecfg;
    ecfg.envName = "CartPole_v0";
    ecfg.numThreads = threads;
    ecfg.episodes = episodes;
    EvalEngine engine(ecfg);
    return engine.evaluateGeneration(handlesOf(genomes), cfg,
                                     EvalEngine::perGenomeSeeds(99));
}

} // namespace

// --- serial == parallel, genome for genome ----------------------------------

TEST(EvalEngineTest, ParallelMatchesSerialGenomeForGenome)
{
    const auto [cfg, genomes] = makeGenomes(24, 5);
    const auto serial = evaluateWithThreads(1, cfg, genomes);

    for (int threads : {2, 8}) {
        const auto parallel = evaluateWithThreads(threads, cfg, genomes);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i].genomeKey, serial[i].genomeKey);
            // Bit-identical, not approximately equal.
            EXPECT_EQ(parallel[i].detail.fitness,
                      serial[i].detail.fitness)
                << "genome " << i << " at " << threads << " threads";
            EXPECT_EQ(parallel[i].detail.inferences,
                      serial[i].detail.inferences);
            EXPECT_EQ(parallel[i].detail.macs, serial[i].detail.macs);
            EXPECT_EQ(parallel[i].detail.maxEpisodeSteps,
                      serial[i].detail.maxEpisodeSteps);
        }
    }
}

TEST(EvalEngineTest, SystemRunBitIdenticalAcrossThreadCounts)
{
    auto run = [](int threads) {
        core::SystemConfig cfg;
        cfg.envName = "CartPole_v0";
        cfg.maxGenerations = 4;
        cfg.seed = 21;
        cfg.numThreads = threads;
        core::System sys(cfg);
        auto summary = sys.run();
        return std::make_pair(summary, sys.reports());
    };

    const auto [s1, r1] = run(1);
    for (int threads : {2, 8}) {
        const auto [sn, rn] = run(threads);
        EXPECT_EQ(sn.solved, s1.solved);
        EXPECT_EQ(sn.generations, s1.generations);
        EXPECT_EQ(sn.bestFitness, s1.bestFitness);
        EXPECT_EQ(sn.totalEvolutionEnergyJ, s1.totalEvolutionEnergyJ);
        EXPECT_EQ(sn.totalInferenceEnergyJ, s1.totalInferenceEnergyJ);
        ASSERT_EQ(rn.size(), r1.size());
        for (size_t i = 0; i < r1.size(); ++i) {
            EXPECT_EQ(rn[i].algo.bestFitness, r1[i].algo.bestFitness);
            EXPECT_EQ(rn[i].algo.meanFitness, r1[i].algo.meanFitness);
            EXPECT_EQ(rn[i].inferenceSteps, r1[i].inferenceSteps);
            EXPECT_EQ(rn[i].hw.eve.cycles, r1[i].hw.eve.cycles);
            EXPECT_EQ(rn[i].hw.adam.cycles, r1[i].hw.adam.cycles);
        }
    }
}

// --- determinism across repeated runs ---------------------------------------

TEST(EvalEngineTest, RepeatedRunsAreDeterministic)
{
    const auto [cfg, genomes] = makeGenomes(16, 11);
    const auto a = evaluateWithThreads(4, cfg, genomes);
    const auto b = evaluateWithThreads(4, cfg, genomes);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].detail.fitness, b[i].detail.fitness);
        EXPECT_EQ(a[i].detail.inferences, b[i].detail.inferences);
    }
}

TEST(EvalEngineTest, SeedMixerSeparatesStreams)
{
    // Distinct (genome, episode) coordinates must yield distinct
    // seeds; the shared policy must ignore the genome coordinate.
    std::set<uint64_t> seen;
    for (int g = 0; g < 32; ++g)
        for (int e = 0; e < 8; ++e)
            seen.insert(EvalEngine::mixSeed(7, g, e));
    EXPECT_EQ(seen.size(), 32u * 8u);

    const auto shared = EvalEngine::sharedEpisodeSeeds(7);
    EXPECT_EQ(shared(0, 3), shared(31, 3));
    EXPECT_NE(shared(0, 3), shared(0, 4));
}

// --- env-pool isolation -----------------------------------------------------

TEST(EnvPoolTest, ShardsAreIndependentInstances)
{
    EnvPool pool("CartPole_v0", 3);
    ASSERT_EQ(pool.size(), 3);
    EXPECT_NE(&pool.at(0), &pool.at(1));
    EXPECT_NE(&pool.at(1), &pool.at(2));

    // Stepping one shard must not disturb another: run an episode on
    // shard 0, then reset shard 1 with the same seed and check it
    // starts from the same initial observation as a fresh instance.
    auto fresh = env::makeEnvironment("CartPole_v0");
    const auto expect_obs = fresh->reset(42);

    env::Environment &dirty = pool.at(0);
    dirty.reset(42);
    for (int i = 0; i < 5; ++i)
        dirty.step(env::Action{1, {}});

    const auto obs = pool.at(1).reset(42);
    EXPECT_EQ(obs, expect_obs);
}

TEST(EvalEngineTest, NoCrossEpisodeStateLeakage)
{
    // The same genome evaluated (a) alone on a fresh engine and
    // (b) sandwiched inside a large batch that dirties every worker's
    // environment must score identically: reset(seed) fully
    // re-initializes a shard, so worker history is invisible.
    const auto [cfg, genomes] = makeGenomes(12, 3);
    const auto probeCfg = cfg;

    EvalEngineConfig ecfg;
    ecfg.envName = "CartPole_v0";
    ecfg.numThreads = 4;
    ecfg.episodes = 2;

    EvalEngine fresh_engine(ecfg);
    const auto alone = fresh_engine.evaluateGeneration(
        {{7, &genomes[7]}}, probeCfg, EvalEngine::perGenomeSeeds(5));

    EvalEngine dirty_engine(ecfg);
    // Dirty every worker with two full batches, then re-evaluate.
    dirty_engine.evaluateGeneration(handlesOf(genomes), probeCfg,
                                    EvalEngine::perGenomeSeeds(123));
    dirty_engine.evaluateGeneration(handlesOf(genomes), probeCfg,
                                    EvalEngine::perGenomeSeeds(456));
    const auto batched = dirty_engine.evaluateGeneration(
        handlesOf(genomes), probeCfg, EvalEngine::perGenomeSeeds(5));

    ASSERT_EQ(alone.size(), 1u);
    EXPECT_EQ(batched[7].genomeKey, alone[0].genomeKey);
    EXPECT_EQ(batched[7].detail.fitness, alone[0].detail.fitness);
    EXPECT_EQ(batched[7].detail.inferences, alone[0].detail.inferences);
}

// --- owning EpisodeRunner ---------------------------------------------------

TEST(EpisodeRunnerTest, OwningRunnerMatchesBorrowingRunner)
{
    const auto [cfg, genomes] = makeGenomes(1, 29);
    const std::vector<uint64_t> seeds{101, 202, 303};

    env::EpisodeRunner owning(env::makeEnvironment("CartPole_v0"), 1,
                              3);
    EXPECT_TRUE(owning.ownsEnvironment());
    const auto a = owning.evaluateDetailed(genomes[0], cfg, seeds);

    auto env = env::makeEnvironment("CartPole_v0");
    env::EpisodeRunner borrowing(*env, 1, 3);
    EXPECT_FALSE(borrowing.ownsEnvironment());
    const auto b = borrowing.evaluateDetailed(genomes[0], cfg, seeds);

    EXPECT_EQ(a.fitness, b.fitness);
    EXPECT_EQ(a.inferences, b.inferences);
    EXPECT_EQ(a.macs, b.macs);
    EXPECT_EQ(a.maxEpisodeSteps, b.maxEpisodeSteps);
    ASSERT_EQ(a.episodes.size(), 3u);
    for (size_t e = 0; e < a.episodes.size(); ++e) {
        EXPECT_EQ(a.episodes[e].fitness, b.episodes[e].fitness);
        EXPECT_EQ(a.episodes[e].steps, b.episodes[e].steps);
        // The invariant documented on EpisodeResult::inferences.
        EXPECT_EQ(a.episodes[e].inferences, a.episodes[e].steps);
    }
}

// --- batch statistics -------------------------------------------------------

TEST(EvalEngineTest, BatchStatsMapOntoWaves)
{
    const auto [cfg, genomes] = makeGenomes(10, 13);

    EvalEngineConfig ecfg;
    ecfg.envName = "CartPole_v0";
    ecfg.numThreads = 2;
    ecfg.episodes = 1;
    ecfg.waveWidth = 4; // 10 genomes -> waves of 4, 4, 2
    EvalEngine engine(ecfg);

    const auto results = engine.evaluateGeneration(
        handlesOf(genomes), cfg, EvalEngine::sharedEpisodeSeeds(1));
    const BatchStats &stats = engine.lastBatchStats();

    ASSERT_EQ(stats.waves.size(), 3u);
    EXPECT_EQ(stats.waveWidth, 4);
    EXPECT_EQ(stats.waves[0].genomes, 4);
    EXPECT_EQ(stats.waves[1].genomes, 4);
    EXPECT_EQ(stats.waves[2].genomes, 2);

    long total = 0;
    for (const auto &r : results)
        total += r.detail.inferences;
    EXPECT_EQ(stats.totalInferences(), total);

    // Lockstep: each wave runs as long as its longest member.
    long expect_lockstep = 0;
    for (size_t w = 0; w < 3; ++w) {
        long wave_max = 0;
        for (size_t i = w * 4; i < std::min<size_t>(results.size(),
                                                    (w + 1) * 4);
             ++i)
            wave_max =
                std::max(wave_max, results[i].detail.inferences);
        expect_lockstep += wave_max;
        EXPECT_EQ(stats.waves[w].lockstepSteps, wave_max);
    }
    EXPECT_EQ(stats.lockstepSteps(), expect_lockstep);
    EXPECT_GT(stats.meanOccupancy(), 0.8); // 10 of 12 slots
    EXPECT_LE(stats.lockstepEfficiency(), 1.0);
    EXPECT_GT(stats.lockstepEfficiency(), 0.0);
}

// --- engine edges: tiny batches, bad genomes, bad configs --------------------

TEST(EvalEngineTest, PopulationSmallerThanLaneWidth)
{
    // 3 genomes on 8-lane wave shards: spare lanes idle, results
    // must still match the serial path genome for genome.
    const auto [cfg, genomes] = makeGenomes(3, 31);

    EvalEngineConfig serial_cfg;
    serial_cfg.envName = "CartPole_v0";
    serial_cfg.numThreads = 1;
    serial_cfg.episodes = 1;
    serial_cfg.batchEpisodes = false;
    serial_cfg.heterogeneousLanes = false;
    EvalEngine serial_engine(serial_cfg);
    const auto reference = serial_engine.evaluateGeneration(
        handlesOf(genomes), cfg, EvalEngine::perGenomeSeeds(17));

    for (int threads : {1, 4}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        EvalEngineConfig wcfg = serial_cfg;
        wcfg.numThreads = threads;
        wcfg.batchEpisodes = true;
        wcfg.heterogeneousLanes = true;
        wcfg.waveLanes = 8;
        EvalEngine engine(wcfg);
        ASSERT_TRUE(engine.usesHeterogeneousWaves());
        const auto waved = engine.evaluateGeneration(
            handlesOf(genomes), cfg, EvalEngine::perGenomeSeeds(17));
        ASSERT_EQ(waved.size(), reference.size());
        for (size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(waved[i].genomeKey, reference[i].genomeKey);
            EXPECT_EQ(waved[i].detail.fitness,
                      reference[i].detail.fitness);
            EXPECT_EQ(waved[i].detail.inferences,
                      reference[i].detail.inferences);
        }
        // Undersubscribed lanes show up as (truthfully low)
        // occupancy, not as a crash or a phantom workload.
        const BatchStats &stats = engine.lastBatchStats();
        EXPECT_GT(stats.waveLaneSlotSteps, 0);
        EXPECT_LT(stats.laneOccupancy(), 1.0);
    }
}

TEST(EvalEngineTest, CompileFailurePropagatesAsException)
{
    // A genome whose plan compile fails validation (no node gene for
    // its output) must surface as an ordinary exception on the
    // calling thread — at any thread count and on every execution
    // path — never as std::terminate from a pool worker or as UB.
    const auto [cfg, genomes] = makeGenomes(6, 37);
    neat::Genome bad(97); // no node genes at all

    auto handles = handlesOf(genomes);
    handles.push_back({97, &bad});

    for (int threads : {1, 4}) {
        for (const char *mode : {"serial", "batch", "waves"}) {
            SCOPED_TRACE(std::string(mode) + " threads " +
                         std::to_string(threads));
            EvalEngineConfig ecfg;
            ecfg.envName = "CartPole_v0";
            ecfg.numThreads = threads;
            ecfg.episodes = 1;
            ecfg.batchEpisodes = std::string(mode) != "serial";
            ecfg.heterogeneousLanes = std::string(mode) == "waves";
            EvalEngine engine(ecfg);
            EXPECT_THROW(engine.evaluateGeneration(
                             handles, cfg,
                             EvalEngine::perGenomeSeeds(7)),
                         std::logic_error);

            // The engine survives the failure: a clean batch on the
            // same instance still evaluates.
            const auto ok = engine.evaluateGeneration(
                handlesOf(genomes), cfg,
                EvalEngine::perGenomeSeeds(7));
            EXPECT_EQ(ok.size(), genomes.size());
        }
    }
}

TEST(EvalEngineTest, ZeroEpisodeConfigRejected)
{
    // Zero (or negative) episodes is a configuration error reported
    // through the usual assertion channel — constructing the engine
    // throws instead of dividing by zero in the fitness mean later.
    for (int episodes : {0, -3}) {
        EvalEngineConfig ecfg;
        ecfg.envName = "CartPole_v0";
        ecfg.numThreads = 2;
        ecfg.episodes = episodes;
        EXPECT_THROW(EvalEngine{ecfg}, std::logic_error)
            << "episodes=" << episodes;
    }
}

// --- trace window (satellite fix) -------------------------------------------

TEST(PopulationTraceWindowTest, WindowEnforcedEveryStep)
{
    auto env = env::makeEnvironment("CartPole_v0");
    neat::NeatConfig cfg = env::configForEnvironment(*env);
    cfg.populationSize = 20;
    cfg.fitnessThreshold = 1e18; // never solve
    neat::Population pop(cfg, 17);
    pop.setTraceWindow(2);

    auto fitness = [](const neat::Genome &g) {
        return static_cast<double>(g.numConnectionGenes());
    };
    for (int i = 0; i < 6; ++i) {
        pop.step(fitness);
        EXPECT_LE(pop.traces().size(), 2u) << "after step " << i;
    }
    EXPECT_EQ(pop.traces().size(), 2u);

    // Shrinking the window takes effect immediately, not on the next
    // step.
    pop.setTraceWindow(1);
    EXPECT_EQ(pop.traces().size(), 1u);
}
