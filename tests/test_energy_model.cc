/**
 * @file
 * Tests for the power/area model: the published 15 nm design point
 * (Fig 8(a)) must be reproduced exactly, and the sweep curves
 * (Fig 8(b,c)) must behave as in the paper.
 */

#include <gtest/gtest.h>

#include "hw/energy_model.hh"

using namespace genesys::hw;

TEST(EnergyModelTest, PublishedDesignPointPower)
{
    EnergyModel m;
    SocParams soc; // defaults = the paper's design point
    const auto p = m.rooflinePower(soc);
    // Fig 8(a): 947.5 mW total at 256 EvE PEs, 200 MHz, 1 V.
    EXPECT_NEAR(p.totalMw(), 947.5, 1.0);
    EXPECT_GT(p.eveMw, 0.0);
    EXPECT_GT(p.adamMw, 0.0);
    EXPECT_GT(p.sramMw, 0.0);
    EXPECT_GT(p.m0Mw, 0.0);
}

TEST(EnergyModelTest, PublishedDesignPointArea)
{
    EnergyModel m;
    SocParams soc;
    const auto a = m.area(soc);
    // Fig 8(a): EvE 0.89 mm^2, ADAM 0.25 mm^2, SoC 2.45 mm^2.
    EXPECT_NEAR(a.eveMm2, 0.89, 0.01);
    EXPECT_NEAR(a.adamMm2, 0.25, 0.03);
    EXPECT_NEAR(a.totalMm2(), 2.45, 0.05);
}

TEST(EnergyModelTest, PowerUnderOneWattAt256Pes)
{
    // "With 256 PEs, we comfortably blanket under 1W" (Section V).
    EnergyModel m;
    SocParams soc;
    soc.numEvePe = 256;
    EXPECT_LT(m.rooflinePower(soc).totalMw(), 1000.0);
}

TEST(EnergyModelTest, PowerScalesWithEvePes)
{
    EnergyModel m;
    double prev = 0.0;
    for (int n : {2, 4, 8, 16, 32, 64, 128, 256, 512}) {
        SocParams soc;
        soc.numEvePe = n;
        const double p = m.rooflinePower(soc).totalMw();
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(EnergyModelTest, NonEveComponentsConstantAcrossSweep)
{
    EnergyModel m;
    SocParams a, b;
    a.numEvePe = 2;
    b.numEvePe = 512;
    EXPECT_DOUBLE_EQ(m.rooflinePower(a).adamMw,
                     m.rooflinePower(b).adamMw);
    EXPECT_DOUBLE_EQ(m.rooflinePower(a).sramMw,
                     m.rooflinePower(b).sramMw);
    EXPECT_DOUBLE_EQ(m.area(a).sramMm2, m.area(b).sramMm2);
}

TEST(EnergyModelTest, EvePeGeometryMatchesFloorplan)
{
    // Fig 8(a): EvE PE is 59 um x 59 um, MAC PE 15 um x 15 um.
    EnergyParams p;
    EXPECT_NEAR(p.evePeMm2, 0.059 * 0.059, 1e-9);
    EXPECT_NEAR(p.adamMacMm2, 0.015 * 0.015, 1e-9);
}

TEST(EnergyModelTest, EventEnergiesConvertToJoules)
{
    EnergyModel m;
    EXPECT_DOUBLE_EQ(m.sramReadJ(), m.params().sramReadPj * 1e-12);
    EXPECT_DOUBLE_EQ(m.macJ(), m.params().macPj * 1e-12);
    EXPECT_GT(m.sramWriteJ(), m.sramReadJ()); // writes cost more
    EXPECT_GT(m.sramReadJ(), m.evePeOpJ());   // memory >> compute
    EXPECT_GT(m.dramByteJ(), m.sramReadJ() / 8.0); // DRAM >> SRAM
}

TEST(EnergyModelTest, CyclesToSecondsUsesFrequency)
{
    EnergyModel m;
    SocParams soc;
    EXPECT_DOUBLE_EQ(m.cyclesToSeconds(soc, 200e6), 1.0);
    EXPECT_DOUBLE_EQ(m.cyclesToSeconds(soc, 200.0), 1e-6);
}
