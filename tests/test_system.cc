/**
 * @file
 * Integration tests: the full GeneSys closed loop (System), the SoC
 * generation simulator, and the end-to-end hardware functional path
 * (encode -> split -> PE -> merge -> decode).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "hw/eve_pe.hh"
#include "hw/gene_merge.hh"
#include "hw/gene_split.hh"

using namespace genesys;
using namespace genesys::core;

TEST(SystemTest, CartPoleSolves)
{
    SystemConfig cfg;
    cfg.envName = "CartPole_v0";
    cfg.maxGenerations = 40;
    cfg.seed = 7;
    System sys(cfg);
    const auto summary = sys.run();
    EXPECT_TRUE(summary.solved);
    EXPECT_GE(summary.bestFitness,
              sys.environment().targetFitness());
    EXPECT_GT(summary.totalInferenceEnergyJ, 0.0);
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    SystemConfig cfg;
    cfg.envName = "MountainCar_v0";
    cfg.maxGenerations = 5;
    cfg.seed = 11;
    System a(cfg), b(cfg);
    a.run();
    b.run();
    ASSERT_EQ(a.reports().size(), b.reports().size());
    for (size_t i = 0; i < a.reports().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.reports()[i].algo.bestFitness,
                         b.reports()[i].algo.bestFitness);
        EXPECT_EQ(a.reports()[i].algo.totalGenes,
                  b.reports()[i].algo.totalGenes);
        EXPECT_EQ(a.reports()[i].hw.eve.cycles,
                  b.reports()[i].hw.eve.cycles);
    }
}

TEST(SystemTest, ReportsCarryHardwareAndWorkloadStats)
{
    SystemConfig cfg;
    cfg.envName = "MountainCar_v0";
    cfg.maxGenerations = 3;
    cfg.seed = 3;
    System sys(cfg);
    sys.run();
    ASSERT_GE(sys.reports().size(), 1u);
    for (const auto &r : sys.reports()) {
        EXPECT_GT(r.inferenceSteps, 0);
        EXPECT_GT(r.macsPerStep, 0.0);
        EXPECT_GT(r.compactCellsPerGenome, 0.0);
        EXPECT_GE(r.sparseCellsPerGenome, r.compactCellsPerGenome);
        EXPECT_GT(r.hw.adam.cycles, 0);
        EXPECT_GT(r.hw.inferenceEnergyJ, 0.0);
    }
}

TEST(SystemTest, HardwareSimulationOptional)
{
    SystemConfig cfg;
    cfg.envName = "MountainCar_v0";
    cfg.maxGenerations = 2;
    cfg.seed = 5;
    cfg.simulateHardware = false;
    System sys(cfg);
    sys.run();
    for (const auto &r : sys.reports()) {
        EXPECT_EQ(r.hw.adam.cycles, 0);
        EXPECT_DOUBLE_EQ(r.hw.inferenceEnergyJ, 0.0);
    }
}

TEST(SystemTest, GenesysTransferShareIsSmall)
{
    // Fig 10(c): GENESYS spends ~15% of inference time moving data.
    SystemConfig cfg;
    cfg.envName = "Alien-ram-v0";
    cfg.maxGenerations = 2;
    cfg.seed = 2;
    System sys(cfg);
    sys.run();
    for (const auto &r : sys.reports()) {
        EXPECT_GT(r.hw.transferFraction(), 0.0);
        // ~15% typical; generations whose episodes die early pay a
        // relatively larger one-time weight-streaming share.
        EXPECT_LT(r.hw.transferFraction(), 0.45);
    }
}

TEST(SystemTest, TweakNeatHookApplies)
{
    SystemConfig cfg;
    cfg.envName = "CartPole_v0";
    cfg.maxGenerations = 1;
    cfg.seed = 4;
    cfg.tweakNeat = [](neat::NeatConfig &n) { n.populationSize = 42; };
    System sys(cfg);
    EXPECT_EQ(sys.population().genomes().size(), 42u);
}

TEST(ExperimentTest, RunWorkloadBuildsSeries)
{
    auto spec = workload("MountainCar_v0");
    spec.maxGenerations = 4;
    const auto run = runWorkload(spec, 9, true);
    EXPECT_EQ(run.fitnessSeries.values.size(), run.reports.size());
    EXPECT_EQ(run.geneSeries.values.size(), run.reports.size());
    for (double f : run.fitnessSeries.values) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.2);
    }
    for (double g : run.geneSeries.values)
        EXPECT_GT(g, 0.0);
}

TEST(ExperimentTest, ProfileFromRunIsPopulated)
{
    auto spec = workload("MountainCar_v0");
    spec.maxGenerations = 4;
    const auto run = runWorkload(spec, 10, true);
    const auto p = profileFromRun(run);
    EXPECT_EQ(p.envName, "MountainCar_v0");
    EXPECT_GT(p.evolutionOps, 0);
    EXPECT_GT(p.inferenceSteps, 0);
    EXPECT_GT(p.macsPerStep, 0.0);
    EXPECT_GT(p.totalGenes, 0);
    EXPECT_EQ(p.obsBytes, 8);
}

TEST(ExperimentTest, RunSeedsProducesDistinctRuns)
{
    auto spec = workload("MountainCar_v0");
    spec.maxGenerations = 3;
    const auto runs = runSeeds(spec, 1, 3, false);
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_NE(runs[0].geneSeries.values.back(),
              runs[1].geneSeries.values.back());
}

TEST(WorkloadsTest, SuitesWellFormed)
{
    EXPECT_EQ(evaluationSuite().size(), 6u);
    EXPECT_EQ(characterizationSuite().size(), 9u);
    for (const auto &w : characterizationSuite()) {
        const auto cfg = neatConfigFor(w);
        cfg.validate();
        EXPECT_EQ(cfg.populationSize, 150);
    }
    EXPECT_ANY_THROW(workload("DoesNotExist"));
}

/**
 * End-to-end hardware functional path: a software-bred generation's
 * parents pushed through the real EvE pipeline produce valid child
 * genomes, across seeds.
 */
class HwFunctional : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HwFunctional, EvePipelineProducesValidChildren)
{
    neat::NeatConfig cfg;
    cfg.numInputs = 4;
    cfg.numOutputs = 2;
    cfg.nodeAddProb = 0.3;
    cfg.connAddProb = 0.4;
    cfg.connDeleteProb = 0.2;
    cfg.nodeDeleteProb = 0.1;
    neat::NodeIndexer idx(cfg.numOutputs);
    XorWow rng(GetParam());

    auto p1 = neat::Genome::createNew(0, cfg, idx, rng);
    auto p2 = neat::Genome::createNew(1, cfg, idx, rng);
    for (int i = 0; i < 15; ++i) {
        p1.mutate(cfg, idx, rng);
        p2.mutate(cfg, idx, rng);
    }

    hw::GeneCodec codec;
    const auto s1 = codec.encodeGenome(p1, cfg);
    const auto s2 = codec.encodeGenome(p2, cfg);
    const auto stream = hw::alignStreams(s1, s2, codec);

    hw::EvePe pe(codec, hw::peConfigFrom(cfg, stream.size()),
                 GetParam() ^ 0x5555);
    const auto res = pe.processChild(stream);
    const auto merged = hw::mergeChild(res.childGenes, codec);
    auto child = codec.decodeGenome(merged.genome, 99);

    // The child must be a structurally valid genome; the hardware
    // pipeline never silently makes the feed-forward graph cyclic
    // either, because added connections reuse observed (src, dst)
    // orderings. Check everything but cycles via validate on a
    // recurrent-permissive config, then spot-check outputs exist.
    auto relaxed = cfg;
    relaxed.feedForward = false; // HW may add skip edges; see docs
    child.validate(relaxed);
    EXPECT_TRUE(child.nodes().count(0));
    EXPECT_TRUE(child.nodes().count(1));
    EXPECT_GT(child.numConnectionGenes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwFunctional,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
