// Fixture: node-per-gene std::map storage reintroduced in src/neat/
// — exactly the PR-3 regression the rule guards against.
#ifndef GENESYS_TESTS_LINT_MAP_GENES_BAD_HH
#define GENESYS_TESTS_LINT_MAP_GENES_BAD_HH

#include <map>

#include "neat/gene.hh"

namespace genesys::neat
{

struct SlowGenome
{
    std::map<int, NodeGene> nodes;           // finding: map-gene-storage
    std::map<ConnKey, ConnectionGene> conns; // finding: map-gene-storage
};

} // namespace genesys::neat

#endif // GENESYS_TESTS_LINT_MAP_GENES_BAD_HH
