// Fixture: output routed through common/logging; a caller-provided
// ostream is fine too (the caller chooses the sink).
#include <ostream>
#include <string>

#include "common/logging.hh"

namespace genesys::hw
{

void
reportCycles(std::ostream &os, long cycles)
{
    os << "cycles: " << cycles << "\n";
    inform("cycles: " + std::to_string(cycles));
}

} // namespace genesys::hw
