// Fixture: RAII guards only.
#include <mutex>

namespace genesys::exec
{

std::mutex &poolMutex();
void advance();

void
safeCriticalSection()
{
    std::lock_guard<std::mutex> lock(poolMutex());
    advance();
}

void
safeWaitSection(std::condition_variable_any &cv, bool &ready)
{
    std::unique_lock<std::mutex> lock(poolMutex());
    cv.wait(lock, [&] { return ready; });
}

} // namespace genesys::exec
