// Fixture: volatile used as a (broken) synchronization primitive.
namespace genesys::exec
{

// genesys-lint: allow(global-state, fixture isolates the volatile rule)
volatile bool stopRequested = false; // finding: volatile-state

void
requestStop(volatile int *flag) // finding: volatile-state
{
    *flag = 1;
    stopRequested = true;
}

} // namespace genesys::exec
