// Clean twin for the libm-in-hot-path rule: this file is scanned at
// src/neat/ — the reference-activation translation unit's home, which
// the rule exempts by scope. libm calls here ARE the golden reference
// the hw tier's approximation error is measured against, so they must
// never be flagged.

#include <cmath>

namespace genesys::neat
{

double
activateSigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-5.0 * x));
}

double
activateTanh(double x)
{
    return std::tanh(2.5 * x);
}

} // namespace genesys::neat
