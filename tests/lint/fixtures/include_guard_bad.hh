// finding: include-guard (anchors on line 1: no guard in this header)
// Fixture: header with no include guard at all.
#include <vector>

namespace genesys::core
{

struct Unguarded
{
    std::vector<int> keys;
};

} // namespace genesys::core
