// Fixture: raw stdio in library code (scanned as src/hw/...).
#include <cstdio>
#include <iostream>

namespace genesys::hw
{

void
reportCycles(long cycles)
{
    std::cout << "cycles: " << cycles << "\n"; // finding: raw-stdio
    std::cerr << "warning\n";                  // finding: raw-stdio
    printf("cycles: %ld\n", cycles);           // finding: raw-stdio
    fprintf(stderr, "warning\n");              // finding: raw-stdio
}

} // namespace genesys::hw
