// Fixture: unannotated mutable static-storage state, three flavors.
#include <atomic>

namespace genesys::core
{

std::atomic<long> totalSteps{0}; // finding: global-state

static int generationCounter = 0; // finding: global-state

thread_local double lastFitness = 0.0; // finding: global-state

long
bump()
{
    ++generationCounter;
    lastFitness += 1.0;
    return totalSteps.fetch_add(1);
}

} // namespace genesys::core
