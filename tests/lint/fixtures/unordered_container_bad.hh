// Fixture: unordered containers in digest-relevant code.
#ifndef GENESYS_TESTS_LINT_UNORDERED_BAD_HH
#define GENESYS_TESTS_LINT_UNORDERED_BAD_HH

#include <unordered_map>
#include <unordered_set>

namespace genesys::core
{

struct SpeciesIndex
{
    std::unordered_map<int, double> fitnessByKey; // finding: unordered-container
    std::unordered_set<int> memberKeys; // finding: unordered-container
};

} // namespace genesys::core

#endif // GENESYS_TESTS_LINT_UNORDERED_BAD_HH
