// Fixture: flat SoA gene storage plus the std::map uses that remain
// legitimate in src/neat/ (small per-generation bookkeeping keyed by
// species/genome id, not per-gene containers).
#ifndef GENESYS_TESTS_LINT_MAP_GENES_CLEAN_HH
#define GENESYS_TESTS_LINT_MAP_GENES_CLEAN_HH

#include <map>

#include "neat/flat_gene_map.hh"
#include "neat/gene.hh"

namespace genesys::neat
{

struct FastGenome
{
    FlatGeneMap<int, NodeGene> nodes;
    FlatGeneMap<ConnKey, ConnectionGene> conns;
    std::map<int, double> spawnBydSpecies; // bookkeeping, not genes
};

} // namespace genesys::neat

#endif // GENESYS_TESTS_LINT_MAP_GENES_CLEAN_HH
