// Fixture: using-namespace in a header.
#ifndef GENESYS_TESTS_LINT_USING_NS_BAD_HH
#define GENESYS_TESTS_LINT_USING_NS_BAD_HH

#include <vector>

using namespace std; // finding: using-namespace-header

namespace genesys::core
{

using namespace genesys::neat; // finding: using-namespace-header

} // namespace genesys::core

#endif // GENESYS_TESTS_LINT_USING_NS_BAD_HH
