// Fixture: immutable statics need no annotation; intentional mutable
// global state carries a genesys-lint allow() with a reason.
#include <atomic>
#include <string>

namespace genesys::core
{

static const int kMaxSpecies = 64;
static constexpr double kEpsilon = 1e-9;

// genesys-lint: allow(global-state, run-scoped singleton for the test)
std::atomic<long> totalSteps{0};

thread_local int scratchSlot = 0; // genesys-lint: allow(global-state, per-thread scratch for the test)

static std::string describe(int key);

long
bump()
{
    (void)kMaxSpecies;
    (void)kEpsilon;
    (void)scratchSlot;
    return totalSteps.fetch_add(1);
}

} // namespace genesys::core
