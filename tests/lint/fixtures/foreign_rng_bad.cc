// Fixture: every banned randomness source, one per line.
#include <cstdlib>
#include <random>

namespace genesys::neat
{

double
randomWeight()
{
    std::mt19937 gen(42);                      // finding: foreign-rng
    std::random_device rd;                     // finding: foreign-rng
    srand(7);                                  // finding: foreign-rng
    return static_cast<double>(rand()) /       // finding: foreign-rng
           static_cast<double>(RAND_MAX);
}

} // namespace genesys::neat
