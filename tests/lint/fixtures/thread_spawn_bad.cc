// Fixture: ad-hoc threads outside exec::ThreadPool.
#include <future>
#include <thread>

namespace genesys::core
{

void work();

void
spawnWorkers()
{
    std::thread t(work); // finding: thread-spawn
    t.detach();          // finding: thread-spawn
    auto f = std::async(std::launch::async, work); // finding: thread-spawn
    f.wait();
}

} // namespace genesys::core
