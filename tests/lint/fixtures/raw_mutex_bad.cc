// Fixture: manual mutex management — an exception between lock() and
// unlock() leaks the mutex.
#include <mutex>

namespace genesys::exec
{

std::mutex &poolMutex();
void advance();

void
unsafeCriticalSection()
{
    poolMutex().lock(); // finding: raw-mutex
    advance();
    poolMutex().unlock(); // finding: raw-mutex
}

} // namespace genesys::exec
