// Fixture: parallelism through the pool primitive.
#include "exec/thread_pool.hh"

namespace genesys::core
{

void workOn(std::size_t item, int worker);

void
spawnWorkers(exec::ThreadPool &pool, std::size_t count)
{
    pool.parallelFor(count, [](std::size_t item, int worker) {
        workOn(item, worker);
    });
}

} // namespace genesys::core
