// Fixture: deterministic-iteration containers only.
#ifndef GENESYS_TESTS_LINT_UNORDERED_CLEAN_HH
#define GENESYS_TESTS_LINT_UNORDERED_CLEAN_HH

#include <map>
#include <vector>

namespace genesys::core
{

struct SpeciesIndex
{
    std::map<int, double> fitnessByKey;
    std::vector<int> sortedMemberKeys;
};

} // namespace genesys::core

#endif // GENESYS_TESTS_LINT_UNORDERED_CLEAN_HH
