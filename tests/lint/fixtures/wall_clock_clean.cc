// Fixture: the same clock reads are legitimate here because the file
// is scanned as src/obs/... — the telemetry allowlist.
#include <chrono>

namespace genesys::obs
{

uint64_t
spanStartNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace genesys::obs
