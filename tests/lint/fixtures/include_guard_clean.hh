// Fixture: classic #ifndef/#define guard (the project style); the
// harness also accepts #pragma once.
#ifndef GENESYS_TESTS_LINT_GUARD_CLEAN_HH
#define GENESYS_TESTS_LINT_GUARD_CLEAN_HH

namespace genesys::core
{

struct Guarded
{
    int key = 0;
};

} // namespace genesys::core

#endif // GENESYS_TESTS_LINT_GUARD_CLEAN_HH
