// Fixture: clock reads in evolution/fitness code (scanned as
// src/env/..., which is not in the timing allowlist).
#include <chrono>
#include <ctime>

namespace genesys::env
{

double
episodeFitnessWithTimeBonus(double base)
{
    const auto t0 = std::chrono::steady_clock::now(); // finding: wall-clock
    const std::time_t wall = time(nullptr);           // finding: wall-clock
    (void)t0;
    return base + static_cast<double>(wall % 2);
}

} // namespace genesys::env
