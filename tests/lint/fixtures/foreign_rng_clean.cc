// Fixture: XorWow-only randomness, plus near-misses that must not
// trigger: "strand(" contains "rand(", and prose mentioning rand() in
// a comment or string.
#include "common/rng.hh"

#include <string>

namespace genesys::neat
{

double strand(int) { return 0.0; }

double
randomWeight(XorWow &rng)
{
    // rand() in a comment is fine.
    const std::string msg = "never calls rand() at runtime";
    (void)msg;
    return rng.uniform() + strand(3);
}

} // namespace genesys::neat
