// Fixture: std::atomic with explicit ordering.
#include <atomic>

namespace genesys::exec
{

// genesys-lint: allow(global-state, fixture isolates the volatile rule)
std::atomic<bool> stopRequested{false};

void
requestStop()
{
    stopRequested.store(true, std::memory_order_release);
}

} // namespace genesys::exec
