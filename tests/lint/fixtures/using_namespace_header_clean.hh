// Fixture: qualified names and using-declarations (not directives)
// are fine in headers.
#ifndef GENESYS_TESTS_LINT_USING_NS_CLEAN_HH
#define GENESYS_TESTS_LINT_USING_NS_CLEAN_HH

#include <cstdint>
#include <vector>

namespace genesys::core
{

using GenomeKey = int;
using std::uint64_t;

std::vector<GenomeKey> sortedKeys();

} // namespace genesys::core

#endif // GENESYS_TESTS_LINT_USING_NS_CLEAN_HH
