// Violating fixture for the libm-in-hot-path rule: raw libm
// transcendentals inside src/nn/, the HwFaithful tier's no-libm hot
// path. Each call below is the scalar sigmoid/exp that the
// hw_activations.hh cores exist to replace — one of these in a lane
// loop and GCC stops vectorizing the whole activation step.

#include <cmath>

namespace genesys::nn
{

double
sigmoidScalar(double x)
{
    return 1.0 / (1.0 + std::exp(-5.0 * x)); // finding: libm-in-hot-path
}

double
tanhScalar(double x)
{
    return std::tanh(2.5 * x); // finding: libm-in-hot-path
}

float
expSingle(float x)
{
    return std::expf(x); // finding: libm-in-hot-path
}

// An annotated site passes: one-time table construction at plan
// compile time is not the per-step lane loop.
// genesys-lint: allow(libm-in-hot-path, one-time LUT seed at compile time, off the per-step eval path)
double lutSeed(double x) { return std::exp2(x); }

// The sanctioned routes never match: approximation cores and
// non-transcendental cmath are fine.
double
clampOnly(double x)
{
    return std::min(std::max(x, -1.0), 1.0);
}

} // namespace genesys::nn
