#!/usr/bin/env python3
"""Selftest harness for tools/lint/genesys_lint.py.

Every rule has a violating fixture and a clean fixture in
tests/lint/fixtures/. Expected findings are declared *in* the
violating fixtures as `// finding: <rule-name>` markers, so the
expectation lives next to the code it describes; the harness copies
each fixture into a temp repo at a scan path that exercises the rule's
path scoping (e.g. the wall-clock fixture lands in src/env/, its clean
twin in the src/obs/ allowlist) and asserts the lint reports exactly
the marked (rule, line) set.

Run directly (`python3 tests/lint/test_genesys_lint.py`) or via ctest
(the `lint_selftest` test).
"""

import importlib.util
import os
import re
import shutil
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.normpath(os.path.join(HERE, "..", ".."))
FIXTURES = os.path.join(HERE, "fixtures")
LINT_PY = os.path.join(REPO, "tools", "lint", "genesys_lint.py")

spec = importlib.util.spec_from_file_location("genesys_lint", LINT_PY)
genesys_lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(genesys_lint)

FINDING_MARK = re.compile(r"//.*\bfinding:\s*([a-z][a-z0-9-]*)")

# fixture stem -> (rule, scan path for the bad twin, scan path for the
# clean twin). The clean path differs where the rule is path-scoped.
FIXTURE_PLAN = {
    "foreign_rng": ("foreign-rng", "src/neat", "src/neat"),
    "wall_clock": ("wall-clock", "src/env", "src/obs"),
    "unordered_container": ("unordered-container", "src/core", "src/core"),
    "map_gene_storage": ("map-gene-storage", "src/neat", "src/neat"),
    "libm_hot_path": ("libm-in-hot-path", "src/nn", "src/neat"),
    "raw_stdio": ("raw-stdio", "src/hw", "src/hw"),
    "using_namespace_header": ("using-namespace-header", "src/core",
                               "src/core"),
    "include_guard": ("include-guard", "src/core", "src/core"),
    "global_state": ("global-state", "src/core", "src/core"),
    "raw_mutex": ("raw-mutex", "src/exec", "src/exec"),
    "thread_spawn": ("thread-spawn", "src/core", "src/exec"),
    "volatile_state": ("volatile-state", "src/exec", "src/exec"),
}


def expected_findings(path):
    """The (rule, line) pairs declared by // finding: markers."""
    expected = set()
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            m = FINDING_MARK.search(line)
            if m:
                expected.add((m.group(1), lineno))
    return expected


class LintedFixture:
    """A fixture copied into a temp repo at its scan path and linted."""

    def __init__(self, fixture_file, scan_dir, disabled=()):
        self.tmp = tempfile.mkdtemp(prefix="genesys-lint-test-")
        dest_dir = os.path.join(self.tmp, scan_dir)
        os.makedirs(dest_dir, exist_ok=True)
        src = os.path.join(FIXTURES, fixture_file)
        self.dest = os.path.join(dest_dir, fixture_file)
        shutil.copy(src, self.dest)
        saved_root = genesys_lint.REPO_ROOT
        genesys_lint.REPO_ROOT = self.tmp
        try:
            self.findings = genesys_lint.lint_file(self.dest,
                                                   set(disabled))
        finally:
            genesys_lint.REPO_ROOT = saved_root
        shutil.rmtree(self.tmp, ignore_errors=True)

    def pairs(self):
        return {(f.rule, f.line) for f in self.findings}


class TestRuleFixtures(unittest.TestCase):
    """Each rule: the bad fixture is caught exactly, the clean one
    passes."""


def _add_fixture_tests():
    for stem, (rule, bad_dir, clean_dir) in FIXTURE_PLAN.items():
        bad_file = next(
            n for n in os.listdir(FIXTURES)
            if n.startswith(stem + "_bad."))
        clean_file = next(
            n for n in os.listdir(FIXTURES)
            if n.startswith(stem + "_clean."))

        def test_bad(self, bad_file=bad_file, bad_dir=bad_dir,
                     rule=rule):
            expected = expected_findings(
                os.path.join(FIXTURES, bad_file))
            self.assertTrue(expected,
                            "%s declares no // finding: markers"
                            % bad_file)
            self.assertTrue(
                all(r == rule for r, _ in expected),
                "%s declares markers for foreign rules" % bad_file)
            got = LintedFixture(bad_file, bad_dir).pairs()
            self.assertEqual(expected, got)

        def test_clean(self, clean_file=clean_file,
                       clean_dir=clean_dir):
            got = LintedFixture(clean_file, clean_dir).pairs()
            self.assertEqual(set(), got)

        def test_disabled(self, bad_file=bad_file, bad_dir=bad_dir,
                          rule=rule):
            got = LintedFixture(bad_file, bad_dir,
                                disabled=[rule]).pairs()
            self.assertEqual(set(), got)

        setattr(TestRuleFixtures, "test_%s_bad" % stem, test_bad)
        setattr(TestRuleFixtures, "test_%s_clean" % stem, test_clean)
        setattr(TestRuleFixtures, "test_%s_disabled" % stem,
                test_disabled)


_add_fixture_tests()


class TestToolBehavior(unittest.TestCase):
    def lint_text(self, text, scan_path, disabled=()):
        tmp = tempfile.mkdtemp(prefix="genesys-lint-test-")
        try:
            dest = os.path.join(tmp, scan_path)
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            with open(dest, "w") as f:
                f.write(text)
            saved_root = genesys_lint.REPO_ROOT
            genesys_lint.REPO_ROOT = tmp
            try:
                return genesys_lint.lint_file(dest, set(disabled))
            finally:
                genesys_lint.REPO_ROOT = saved_root
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_rule_count_meets_floor(self):
        self.assertGreaterEqual(len(genesys_lint.RULES), 8)

    def test_list_rules_names_every_rule(self):
        import contextlib
        import io
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = genesys_lint.main(["--list-rules"])
        self.assertEqual(status, 0)
        listing = out.getvalue()
        for name, _, _ in genesys_lint.RULES:
            self.assertIn(name, listing)

    def test_repo_lints_clean(self):
        import contextlib
        import io
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(io.StringIO()):
            status = genesys_lint.main([os.path.join(REPO, "src")])
        self.assertEqual(status, 0)

    def test_exit_nonzero_on_findings(self):
        import contextlib
        import io
        tmp = tempfile.mkdtemp(prefix="genesys-lint-test-")
        try:
            dest = os.path.join(tmp, "src", "core", "bad.cc")
            os.makedirs(os.path.dirname(dest))
            with open(dest, "w") as f:
                f.write("#include <random>\nstd::mt19937 gen;\n")
            saved_root = genesys_lint.REPO_ROOT
            genesys_lint.REPO_ROOT = tmp
            try:
                with contextlib.redirect_stdout(io.StringIO()), \
                        contextlib.redirect_stderr(io.StringIO()):
                    status = genesys_lint.main([dest])
            finally:
                genesys_lint.REPO_ROOT = saved_root
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        self.assertEqual(status, 1)

    def test_same_line_suppression(self):
        text = ("#include <random>\n"
                "// genesys-lint: allow(foreign-rng, differential "
                "reference against libstdc++)\n"
                "std::mt19937 gen;\n")
        findings = self.lint_text(text, "src/core/x.cc")
        self.assertEqual([], [str(f) for f in findings])

    def test_suppression_reason_required(self):
        text = ("#include <random>\n"
                "std::mt19937 gen; // genesys-lint: allow(foreign-rng)\n")
        findings = self.lint_text(text, "src/core/x.cc")
        rules = sorted(f.rule for f in findings)
        # The bare allow() suppresses nothing and is itself flagged.
        self.assertEqual(["bad-suppression", "foreign-rng"], rules)

    def test_suppression_unknown_rule(self):
        text = "// genesys-lint: allow(no-such-rule, whatever)\nint x;\n"
        findings = self.lint_text(text, "src/core/x.cc")
        self.assertEqual(["bad-suppression"], [f.rule for f in findings])

    def test_comment_block_suppression_covers_next_code_line(self):
        text = ("#include <random>\n"
                "// genesys-lint: allow(foreign-rng, testing block "
                "comments)\n"
                "// ...continued prose about why...\n"
                "std::mt19937 gen;\n")
        findings = self.lint_text(text, "src/core/x.cc")
        self.assertEqual([], [str(f) for f in findings])

    def test_strings_and_comments_never_match(self):
        text = ('#include <string>\n'
                'const std::string kDoc =\n'
                '    "call rand() and std::cout << time(nullptr)";\n'
                '// rand() srand() std::mt19937 std::cout time(nullptr)\n'
                '/* volatile std::unordered_map<int,int> */\n')
        findings = self.lint_text(text, "src/core/x.cc")
        self.assertEqual([], [str(f) for f in findings])


if __name__ == "__main__":
    unittest.main(verbosity=2)
