/**
 * @file
 * Golden determinism lock: fixed-seed multi-generation runs hashed
 * down to one 64-bit digest per configuration, compared against
 * committed constants. Every prior bit-identity suite compares two
 * live paths against each other (serial vs batched, 1 vs 8 threads);
 * this one pins the absolute bit pattern, so a change that breaks all
 * paths in the *same* way — a reordered accumulation in the episode
 * loop, a perturbed seed derivation, an altered hardware-model
 * constant — still fails ctest without needing a pre-change binary to
 * diff against.
 *
 * The digests fold in the RunSummary totals and every generation
 * report's algorithm, workload and hardware-cycle fields (the same
 * fields the differential suites compare), over 6 generations of
 * CartPole and Atari-RAM populations, feed-forward and recurrent.
 * They are toolchain-locked by construction: a different libm or FP
 * contraction regime may legitimately produce different bits. On such
 * a change — or an *intentional* semantic change — regenerate with
 *
 *     GENESYS_PRINT_DIGESTS=1 ./tests/test_golden_digests
 *
 * and update the constants below, noting why in the commit.
 *
 * The suite deliberately does NOT clear GENESYS_EVAL_MODE: under the
 * CI mode matrix the same constants must hold for the serial,
 * per-genome-batched and heterogeneous-wave execution paths — the
 * strongest cross-mode identity statement in the tree.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "core/genesys.hh"

using namespace genesys;

namespace
{

/** FNV-1a 64-bit accumulation over one 64-bit word. */
void
fold(uint64_t &h, uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

void
fold(uint64_t &h, double v)
{
    fold(h, std::bit_cast<uint64_t>(v));
}

/** Run a fixed 6-generation system and digest its observable state. */
uint64_t
digestRun(const std::string &envName, bool feed_forward, int threads)
{
    core::SystemConfig cfg;
    cfg.envName = envName;
    cfg.maxGenerations = 6;
    cfg.episodesPerEval = 1;
    cfg.seed = 20260727;
    cfg.numThreads = threads;
    // Small fixed population: digest stability matters, search
    // quality does not, and the Atari-RAM genomes are wide (128
    // inputs).
    cfg.tweakNeat = [feed_forward](neat::NeatConfig &ncfg) {
        ncfg.populationSize = 32;
        ncfg.feedForward = feed_forward;
    };

    core::System sys(cfg);
    const core::RunSummary s = sys.run();

    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    fold(h, static_cast<uint64_t>(s.solved));
    fold(h, static_cast<uint64_t>(s.generations));
    fold(h, s.bestFitness);
    fold(h, s.totalEvolutionEnergyJ);
    fold(h, s.totalInferenceEnergyJ);
    fold(h, s.totalEvolutionSeconds);
    fold(h, s.totalInferenceSeconds);
    for (const core::GenerationReport &r : sys.reports()) {
        fold(h, r.algo.bestFitness);
        fold(h, r.algo.meanFitness);
        fold(h, static_cast<uint64_t>(r.algo.evolutionOps));
        fold(h, static_cast<uint64_t>(r.inferenceSteps));
        fold(h, static_cast<uint64_t>(r.maxEpisodeSteps));
        fold(h, r.macsPerStep);
        fold(h, r.compactCellsPerGenome);
        fold(h, r.sparseCellsPerGenome);
        fold(h, static_cast<uint64_t>(r.hw.eve.cycles));
        fold(h, static_cast<uint64_t>(r.hw.adam.cycles));
        fold(h, r.hw.evolutionEnergyJ);
        fold(h, r.hw.inferenceEnergyJ);
    }
    return h;
}

/**
 * Check one configuration against its golden digest at 1 thread, and
 * that 8 threads reproduce the same bits. When GENESYS_PRINT_DIGESTS
 * is set, print the measured value for regeneration instead of
 * relying on the failure output.
 */
void
expectGolden(const std::string &envName, bool feed_forward,
             uint64_t golden)
{
    const uint64_t d1 = digestRun(envName, feed_forward, 1);
    if (std::getenv("GENESYS_PRINT_DIGESTS") != nullptr) {
        printf("golden digest %-16s %s: 0x%016llxull\n",
               envName.c_str(), feed_forward ? "ff " : "rec",
               static_cast<unsigned long long>(d1));
    }
    EXPECT_EQ(d1, golden)
        << envName << (feed_forward ? " feed-forward" : " recurrent")
        << " digest drifted; if the change is intentional, regenerate "
           "with GENESYS_PRINT_DIGESTS=1 ./tests/test_golden_digests";
    EXPECT_EQ(digestRun(envName, feed_forward, 8), d1)
        << envName << " digest differs at 8 threads";
}

} // namespace

TEST(GoldenDigestTest, CartPoleFeedForward)
{
    expectGolden("CartPole_v0", true, 0xa4dd2bf2e33d8903ull);
}

TEST(GoldenDigestTest, CartPoleRecurrent)
{
    expectGolden("CartPole_v0", false, 0xf4652fd5a13a0e77ull);
}

TEST(GoldenDigestTest, AtariRamFeedForward)
{
    expectGolden("AirRaid-ram-v0", true, 0x04275853e587422aull);
}

TEST(GoldenDigestTest, AtariRamRecurrent)
{
    expectGolden("AirRaid-ram-v0", false, 0x43e86f2c5070f181ull);
}
