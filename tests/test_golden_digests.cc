/**
 * @file
 * Golden determinism lock: fixed-seed multi-generation runs hashed
 * down to one 64-bit digest per configuration, compared against
 * committed constants. Every prior bit-identity suite compares two
 * live paths against each other (serial vs batched, 1 vs 8 threads);
 * this one pins the absolute bit pattern, so a change that breaks all
 * paths in the *same* way — a reordered accumulation in the episode
 * loop, a perturbed seed derivation, an altered hardware-model
 * constant — still fails ctest without needing a pre-change binary to
 * diff against.
 *
 * The digests fold in the RunSummary totals and every generation
 * report's algorithm, workload and hardware-cycle fields (the same
 * fields the differential suites compare), over 6 generations of
 * CartPole and Atari-RAM populations, feed-forward and recurrent.
 * They are toolchain-locked by construction: a different libm or FP
 * contraction regime may legitimately produce different bits. On such
 * a change — or an *intentional* semantic change — regenerate with
 *
 *     GENESYS_PRINT_DIGESTS=1 ./tests/test_golden_digests
 *
 * and update the constants below, noting why in the commit.
 *
 * The suite deliberately does NOT clear GENESYS_EVAL_MODE: under the
 * CI mode matrix the same constants must hold for the serial,
 * per-genome-batched and heterogeneous-wave execution paths — the
 * strongest cross-mode identity statement in the tree.
 *
 * GENESYS_NUMERICS, by contrast, IS pinned per test: the numerics
 * tiers are intentionally different lowerings with different bit
 * patterns, so each configuration carries one constant per tier
 * (Reference and HwFaithful) and selects its tier explicitly — a CI
 * job exporting GENESYS_NUMERICS=hw suite-wide must not silently
 * retarget the reference constants. The Hw* tests make the same
 * cross-thread/cross-mode/cross-resume identity statement for the
 * quantized tier that the originals make for the float tier.
 *
 * The Resumed* variants run the same configurations interrupted at a
 * mid-run generation barrier — checkpoint, destroy the System, resume
 * in a fresh one — and must land on the SAME constants: the
 * persist:: save/load boundary is invisible to every digested bit.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/genesys.hh"
#include "nn/numerics.hh"
#include "persist/snapshot.hh"

using namespace genesys;

namespace
{

/** FNV-1a 64-bit accumulation over one 64-bit word. */
void
fold(uint64_t &h, uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

void
fold(uint64_t &h, double v)
{
    fold(h, std::bit_cast<uint64_t>(v));
}

/**
 * Pin GENESYS_NUMERICS for the lifetime of one digest run, restoring
 * the previous state after. Pinning through the env hook (rather than
 * only SystemConfig) both isolates the constants from an ambient CI
 * override and keeps the hook itself on the golden path.
 */
class ScopedNumericsEnv
{
  public:
    explicit ScopedNumericsEnv(nn::NumericsTier tier)
    {
        const char *prev = std::getenv("GENESYS_NUMERICS");
        had_ = prev != nullptr;
        if (had_)
            prev_ = prev;
        setenv("GENESYS_NUMERICS", nn::numericsTierName(tier).c_str(),
               1);
    }
    ~ScopedNumericsEnv()
    {
        if (had_)
            setenv("GENESYS_NUMERICS", prev_.c_str(), 1);
        else
            unsetenv("GENESYS_NUMERICS");
    }

  private:
    bool had_ = false;
    std::string prev_;
};

/** The fixed configuration every golden run uses. */
core::SystemConfig
goldenConfig(const std::string &envName, bool feed_forward, int threads)
{
    core::SystemConfig cfg;
    cfg.envName = envName;
    cfg.maxGenerations = 6;
    cfg.episodesPerEval = 1;
    cfg.seed = 20260727;
    cfg.numThreads = threads;
    // Small fixed population: digest stability matters, search
    // quality does not, and the Atari-RAM genomes are wide (128
    // inputs).
    cfg.tweakNeat = [feed_forward](neat::NeatConfig &ncfg) {
        ncfg.populationSize = 32;
        ncfg.feedForward = feed_forward;
    };
    return cfg;
}

/** Digest a run's summary + per-generation reports. */
uint64_t
digestFields(const core::RunSummary &s,
             const std::vector<core::GenerationReport> &reports)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    fold(h, static_cast<uint64_t>(s.solved));
    fold(h, static_cast<uint64_t>(s.generations));
    fold(h, s.bestFitness);
    fold(h, s.totalEvolutionEnergyJ);
    fold(h, s.totalInferenceEnergyJ);
    fold(h, s.totalEvolutionSeconds);
    fold(h, s.totalInferenceSeconds);
    for (const core::GenerationReport &r : reports) {
        fold(h, r.algo.bestFitness);
        fold(h, r.algo.meanFitness);
        fold(h, static_cast<uint64_t>(r.algo.evolutionOps));
        fold(h, static_cast<uint64_t>(r.inferenceSteps));
        fold(h, static_cast<uint64_t>(r.maxEpisodeSteps));
        fold(h, r.macsPerStep);
        fold(h, r.compactCellsPerGenome);
        fold(h, r.sparseCellsPerGenome);
        fold(h, static_cast<uint64_t>(r.hw.eve.cycles));
        fold(h, static_cast<uint64_t>(r.hw.adam.cycles));
        fold(h, r.hw.evolutionEnergyJ);
        fold(h, r.hw.inferenceEnergyJ);
    }
    return h;
}

/** Run a fixed 6-generation system and digest its observable state. */
uint64_t
digestRun(const std::string &envName, bool feed_forward, int threads,
          nn::NumericsTier tier)
{
    ScopedNumericsEnv pin(tier);
    core::System sys(goldenConfig(envName, feed_forward, threads));
    const core::RunSummary s = sys.run();
    return digestFields(s, sys.reports());
}

/**
 * The same 6-generation run, interrupted at the `split` generation
 * barrier: the first System checkpoints and is destroyed, a second
 * one resumes from the snapshot file and runs the remaining horizon.
 * Digests the exact fields digestRun does, so the committed constants
 * double as the resumed-run oracle — the strongest statement that
 * save/load crosses the boundary bit-identically.
 */
uint64_t
digestResumedRun(const std::string &envName, bool feed_forward,
                 int threads, int split, nn::NumericsTier tier)
{
    ScopedNumericsEnv pin(tier);
    namespace fs = std::filesystem;
    std::ostringstream dn;
    // PID-qualified so two suite processes on one machine (e.g. two
    // build trees' ctest runs) never share a checkpoint directory;
    // tier-qualified so the Reference and HwFaithful variants of one
    // configuration never share one either.
    dn << "genesys-golden-ckpt-" << envName
       << (feed_forward ? "-ff-" : "-rec-") << threads << '-'
       << nn::numericsTierName(tier) << '-' << ::getpid();
    const fs::path dir = fs::temp_directory_path() / dn.str();
    fs::remove_all(dir);

    core::SystemConfig cfg = goldenConfig(envName, feed_forward, threads);
    cfg.checkpointDir = dir.string();

    std::vector<core::GenerationReport> reports;
    bool solved = false;
    double best_fitness = 0.0;
    {
        core::System a(cfg);
        for (int g = 0; g < split && !solved; ++g)
            solved = a.stepGeneration();
        reports = a.reports();
        if (solved && a.population().hasBest())
            best_fitness = a.population().bestGenome().fitness();
    } // first "process" dies here

    EXPECT_FALSE(solved)
        << envName << " solved before the split generation " << split
        << "; the save/load boundary was not exercised — lower split";
    if (!solved) {
        const std::string snap =
            (dir / persist::snapshotFileName(split)).string();
        EXPECT_TRUE(fs::exists(snap)) << "missing checkpoint " << snap;
        core::SystemConfig rest = cfg;
        rest.checkpointDir.clear();
        rest.maxGenerations = 6 - split; // the remaining horizon
        core::System b(rest);
        b.resumeFrom(snap);
        const core::RunSummary sb = b.run();
        solved = sb.solved;
        best_fitness = sb.bestFitness;
        reports.insert(reports.end(), b.reports().begin(),
                       b.reports().end());
    }
    fs::remove_all(dir);

    // Reconstruct the uninterrupted run's summary: run() derives it
    // from the best genome and the report list, both of which carry
    // across the boundary.
    core::RunSummary s;
    s.solved = solved;
    s.generations = static_cast<int>(reports.size());
    s.bestFitness = best_fitness;
    for (const core::GenerationReport &r : reports) {
        s.totalEvolutionEnergyJ += r.hw.evolutionEnergyJ;
        s.totalInferenceEnergyJ += r.hw.inferenceEnergyJ;
        s.totalEvolutionSeconds += r.hw.evolutionSeconds;
        s.totalInferenceSeconds += r.hw.inferenceSeconds();
    }
    return digestFields(s, reports);
}

/**
 * Check one configuration against its golden digest at 1 thread, and
 * that 8 threads reproduce the same bits. When GENESYS_PRINT_DIGESTS
 * is set, print the measured value for regeneration instead of
 * relying on the failure output.
 */
void
expectGolden(const std::string &envName, bool feed_forward,
             uint64_t golden,
             nn::NumericsTier tier = nn::NumericsTier::Reference)
{
    const uint64_t d1 = digestRun(envName, feed_forward, 1, tier);
    if (std::getenv("GENESYS_PRINT_DIGESTS") != nullptr) {
        printf("golden digest %-16s %s %-9s: 0x%016llxull\n",
               envName.c_str(), feed_forward ? "ff " : "rec",
               nn::numericsTierName(tier).c_str(),
               static_cast<unsigned long long>(d1));
    }
    EXPECT_EQ(d1, golden)
        << envName << (feed_forward ? " feed-forward" : " recurrent")
        << " (" << nn::numericsTierName(tier) << " tier)"
        << " digest drifted; if the change is intentional, regenerate "
           "with GENESYS_PRINT_DIGESTS=1 ./tests/test_golden_digests";
    EXPECT_EQ(digestRun(envName, feed_forward, 8, tier), d1)
        << envName << " digest differs at 8 threads";
}

/**
 * Check that a run interrupted at the `split` generation barrier and
 * resumed in a fresh System reproduces the SAME committed constant as
 * the uninterrupted run, at 1 and 8 threads. `split` must precede the
 * configuration's solve generation or there is no barrier to cross
 * (the CartPole configs solve on generation 2's evaluation, so they
 * split at 2; the Atari ones run all 6 and split at 3).
 */
void
expectGoldenResumed(const std::string &envName, bool feed_forward,
                    int split, uint64_t golden,
                    nn::NumericsTier tier = nn::NumericsTier::Reference)
{
    const uint64_t d1 =
        digestResumedRun(envName, feed_forward, 1, split, tier);
    EXPECT_EQ(d1, golden)
        << envName << (feed_forward ? " feed-forward" : " recurrent")
        << " (" << nn::numericsTierName(tier) << " tier)"
        << " resumed-run digest differs from the uninterrupted "
           "golden constant: checkpoint/resume is not bit-identical";
    EXPECT_EQ(
        digestResumedRun(envName, feed_forward, 8, split, tier), d1)
        << envName << " resumed digest differs at 8 threads";
}

} // namespace

TEST(GoldenDigestTest, CartPoleFeedForward)
{
    expectGolden("CartPole_v0", true, 0xa4dd2bf2e33d8903ull);
}

TEST(GoldenDigestTest, CartPoleRecurrent)
{
    expectGolden("CartPole_v0", false, 0xf4652fd5a13a0e77ull);
}

TEST(GoldenDigestTest, AtariRamFeedForward)
{
    expectGolden("AirRaid-ram-v0", true, 0x04275853e587422aull);
}

TEST(GoldenDigestTest, AtariRamRecurrent)
{
    expectGolden("AirRaid-ram-v0", false, 0x43e86f2c5070f181ull);
}

TEST(GoldenDigestTest, ResumedCartPoleFeedForward)
{
    expectGoldenResumed("CartPole_v0", true, 2, 0xa4dd2bf2e33d8903ull);
}

TEST(GoldenDigestTest, ResumedCartPoleRecurrent)
{
    expectGoldenResumed("CartPole_v0", false, 2, 0xf4652fd5a13a0e77ull);
}

TEST(GoldenDigestTest, ResumedAtariRamFeedForward)
{
    expectGoldenResumed("AirRaid-ram-v0", true, 3,
                        0x04275853e587422aull);
}

TEST(GoldenDigestTest, ResumedAtariRamRecurrent)
{
    expectGoldenResumed("AirRaid-ram-v0", false, 3,
                        0x43e86f2c5070f181ull);
}

// --- HwFaithful tier -------------------------------------------------
// The same configurations lowered through the Q6.10 quantized tier.
// Different constants by design (the tiers are numerically distinct);
// the identity statements are the same: bit-identical at 1 vs 8
// threads, across the GENESYS_EVAL_MODE matrix, and across a
// checkpoint/resume boundary (which also exercises the snapshot's
// recorded-tier provenance field on the happy path).

TEST(GoldenDigestTest, HwCartPoleFeedForward)
{
    expectGolden("CartPole_v0", true, 0x6ea0b26adbe4d5ccull,
                 nn::NumericsTier::HwFaithful);
}

TEST(GoldenDigestTest, HwCartPoleRecurrent)
{
    expectGolden("CartPole_v0", false, 0x67a36c8719ceec4dull,
                 nn::NumericsTier::HwFaithful);
}

TEST(GoldenDigestTest, HwAtariRamFeedForward)
{
    expectGolden("AirRaid-ram-v0", true, 0xdb908a1c665f3ccbull,
                 nn::NumericsTier::HwFaithful);
}

TEST(GoldenDigestTest, HwAtariRamRecurrent)
{
    expectGolden("AirRaid-ram-v0", false, 0x197a2a52e20c5f9dull,
                 nn::NumericsTier::HwFaithful);
}

TEST(GoldenDigestTest, ResumedHwCartPoleFeedForward)
{
    expectGoldenResumed("CartPole_v0", true, 2, 0x6ea0b26adbe4d5ccull,
                        nn::NumericsTier::HwFaithful);
}

TEST(GoldenDigestTest, ResumedHwCartPoleRecurrent)
{
    expectGoldenResumed("CartPole_v0", false, 2, 0x67a36c8719ceec4dull,
                        nn::NumericsTier::HwFaithful);
}

TEST(GoldenDigestTest, ResumedHwAtariRamFeedForward)
{
    expectGoldenResumed("AirRaid-ram-v0", true, 3, 0xdb908a1c665f3ccbull,
                        nn::NumericsTier::HwFaithful);
}

TEST(GoldenDigestTest, ResumedHwAtariRamRecurrent)
{
    expectGoldenResumed("AirRaid-ram-v0", false, 3, 0x197a2a52e20c5f9dull,
                        nn::NumericsTier::HwFaithful);
}
