/**
 * @file
 * Tests for genome construction, crossover and compatibility
 * distance.
 */

#include <gtest/gtest.h>

#include "neat/genome.hh"

using namespace genesys;
using namespace genesys::neat;

namespace
{

NeatConfig
smallConfig()
{
    NeatConfig cfg;
    cfg.numInputs = 3;
    cfg.numOutputs = 2;
    return cfg;
}

} // namespace

TEST(Genome, InputOutputKeys)
{
    const auto cfg = smallConfig();
    EXPECT_EQ(Genome::inputKeys(cfg), (std::vector<int>{-1, -2, -3}));
    EXPECT_EQ(Genome::outputKeys(cfg), (std::vector<int>{0, 1}));
}

TEST(Genome, CreateNewFullDirect)
{
    const auto cfg = smallConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(1);
    const auto g = Genome::createNew(9, cfg, idx, rng);
    EXPECT_EQ(g.key(), 9);
    EXPECT_EQ(g.numNodeGenes(), 2u);      // outputs only
    EXPECT_EQ(g.numConnectionGenes(), 6u); // 3 inputs x 2 outputs
    EXPECT_EQ(g.numGenes(), 8u);
    EXPECT_EQ(g.memoryBytes(), 64u); // 8 genes x 8 B
    g.validate(cfg);
}

TEST(Genome, CreateNewUnconnected)
{
    auto cfg = smallConfig();
    cfg.initialConnection = InitialConnection::Unconnected;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(2);
    const auto g = Genome::createNew(0, cfg, idx, rng);
    EXPECT_EQ(g.numConnectionGenes(), 0u);
    g.validate(cfg);
}

TEST(Genome, CreateNewPartialDirectProbability)
{
    auto cfg = smallConfig();
    cfg.initialConnection = InitialConnection::PartialDirect;
    cfg.partialConnectionProb = 0.5;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(3);
    size_t total = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i)
        total += Genome::createNew(i, cfg, idx, rng)
                     .numConnectionGenes();
    // Expect about half of the 6 possible connections.
    EXPECT_NEAR(static_cast<double>(total) / n, 3.0, 0.3);
}

TEST(Genome, CreateNewWithHiddenNodesIsWired)
{
    auto cfg = smallConfig();
    cfg.numHidden = 2;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(4);
    const auto g = Genome::createNew(0, cfg, idx, rng);
    EXPECT_EQ(g.numNodeGenes(), 4u); // 2 outputs + 2 hidden
    // full direct + (in->hidden) + (hidden->out)
    EXPECT_EQ(g.numConnectionGenes(),
              6u + 2u * 3u + 2u * 2u);
    g.validate(cfg);
}

TEST(Genome, CrossoverHomologousKeysOnlyFromFitter)
{
    const auto cfg = smallConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(5);
    auto p1 = Genome::createNew(1, cfg, idx, rng);
    auto p2 = Genome::createNew(2, cfg, idx, rng);

    // Give p1 an extra (disjoint) node+connection.
    const int extra = idx.next();
    p1.mutableNodes().emplace(extra, NodeGene::createNew(extra, cfg, rng));
    ConnectionGene cg;
    cg.key = {-1, extra};
    p1.mutableConnections().emplace(cg.key, cg);
    // And p2 one of its own, which must NOT be inherited.
    const int extra2 = idx.next();
    p2.mutableNodes().emplace(extra2,
                              NodeGene::createNew(extra2, cfg, rng));

    MutationCounts counts;
    const auto child = Genome::crossover(7, p1, p2, rng, &counts);
    EXPECT_EQ(child.key(), 7);
    EXPECT_TRUE(child.nodes().count(extra));
    EXPECT_FALSE(child.nodes().count(extra2));
    EXPECT_TRUE(child.connections().count(ConnKey{-1, extra}));
    // All of p1's keys present.
    EXPECT_EQ(child.numGenes(), p1.numGenes());
    // 8 homologous genes (2 nodes + 6 conns), 2 disjoint clones.
    EXPECT_EQ(counts.crossoverOps, 8);
    EXPECT_EQ(counts.cloneOps, 2);
}

TEST(Genome, CrossoverAttributeValuesComeFromParents)
{
    auto cfg = smallConfig();
    cfg.weight.initStdev = 0.0;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(6);
    auto p1 = Genome::createNew(1, cfg, idx, rng);
    auto p2 = Genome::createNew(2, cfg, idx, rng);
    for (auto &&[k, c] : p1.mutableConnections())
        c.weight = 5.0;
    for (auto &&[k, c] : p2.mutableConnections())
        c.weight = -5.0;
    const auto child = Genome::crossover(3, p1, p2, rng);
    for (const auto &[k, c] : child.connections())
        EXPECT_TRUE(c.weight == 5.0 || c.weight == -5.0);
}

TEST(Genome, DistanceZeroToSelf)
{
    const auto cfg = smallConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(7);
    const auto g = Genome::createNew(0, cfg, idx, rng);
    EXPECT_DOUBLE_EQ(g.distance(g, cfg), 0.0);
}

TEST(Genome, DistanceSymmetric)
{
    const auto cfg = smallConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(8);
    const auto a = Genome::createNew(0, cfg, idx, rng);
    const auto b = Genome::createNew(1, cfg, idx, rng);
    EXPECT_DOUBLE_EQ(a.distance(b, cfg), b.distance(a, cfg));
}

TEST(Genome, DistanceCountsDisjointGenes)
{
    auto cfg = smallConfig();
    cfg.compatibilityDisjointCoefficient = 1.0;
    cfg.compatibilityWeightCoefficient = 0.0;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(9);
    auto a = Genome::createNew(0, cfg, idx, rng);
    auto b = a;
    b.setKey(1);
    EXPECT_DOUBLE_EQ(a.distance(b, cfg), 0.0);

    const int extra = idx.next();
    b.mutableNodes().emplace(extra, NodeGene::createNew(extra, cfg, rng));
    // One disjoint node out of max(2,3) nodes.
    EXPECT_NEAR(a.distance(b, cfg), 1.0 / 3.0, 1e-12);
}

TEST(Genome, DistanceWeightCoefficientScalesHomologous)
{
    auto cfg = smallConfig();
    cfg.compatibilityWeightCoefficient = 0.5;
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(10);
    auto a = Genome::createNew(0, cfg, idx, rng);
    auto b = a;
    b.setKey(1);
    for (auto &&[k, c] : b.mutableConnections())
        c.weight += 2.0;
    // 6 connections each with |dw|=2 * 0.5 coeff / 6 genes = 1.0.
    EXPECT_NEAR(a.distance(b, cfg), 1.0, 1e-9);
}

TEST(Genome, CreatesCycleDetection)
{
    ConnGeneMap conns;
    auto add = [&conns](int a, int b) {
        ConnectionGene g;
        g.key = {a, b};
        conns.emplace(g.key, g);
    };
    add(-1, 1);
    add(1, 2);
    add(2, 0);
    EXPECT_TRUE(Genome::createsCycle(conns, {0, 1}));  // 1->2->0->1
    EXPECT_TRUE(Genome::createsCycle(conns, {2, 1}));  // 1->2->1
    EXPECT_TRUE(Genome::createsCycle(conns, {1, 1}));  // self loop
    EXPECT_FALSE(Genome::createsCycle(conns, {-1, 2}));
    EXPECT_FALSE(Genome::createsCycle(conns, {1, 0}));
}

TEST(Genome, ValidateCatchesDanglingConnection)
{
    const auto cfg = smallConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(11);
    auto g = Genome::createNew(0, cfg, idx, rng);
    ConnectionGene bad;
    bad.key = {57, 0}; // source node 57 does not exist
    g.mutableConnections().emplace(bad.key, bad);
    EXPECT_ANY_THROW(g.validate(cfg));
}

TEST(Genome, ValidateCatchesMissingOutput)
{
    const auto cfg = smallConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(12);
    auto g = Genome::createNew(0, cfg, idx, rng);
    // Remove output node 1 and its connections.
    g.mutableNodes().erase(1);
    for (auto it = g.mutableConnections().begin();
         it != g.mutableConnections().end();) {
        it = it->first.second == 1 ? g.mutableConnections().erase(it)
                                   : ++it;
    }
    EXPECT_ANY_THROW(g.validate(cfg));
}

TEST(NodeIndexerTest, IssuesMonotonicallyAndBumps)
{
    NodeIndexer idx(5);
    EXPECT_EQ(idx.next(), 5);
    EXPECT_EQ(idx.next(), 6);
    idx.bump(10);
    EXPECT_EQ(idx.next(), 11);
    idx.bump(3); // no-op, already past
    EXPECT_EQ(idx.next(), 12);
}
