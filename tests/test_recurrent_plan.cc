/**
 * @file
 * Differential test harness for recurrent compiled plans.
 *
 * nn::CompiledPlan::compileRecurrent must be bit-identical to the
 * nn::RecurrentNetwork interpreter — across ticks, across reset(),
 * and across batched lanes — because the engine's cross-thread and
 * batched-vs-serial determinism contracts are built on exact
 * equality. The harness fuzzes ~1k random cyclic genomes through both
 * paths with multi-tick stateful episodes, pins the MAC accounting
 * (interpreter == plan == plan schedule — the hw cost model
 * invariant), and checks the batched kernel lane for lane against
 * serial ticking, including per-lane termination masks.
 *
 * Every genome derives from deriveSeed(kFuzzBase, index) via
 * common::rng, so any failure names a reproducible genome index.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "nn/compiled_plan.hh"
#include "nn/plan_cache.hh"
#include "nn/recurrent.hh"

using namespace genesys;
using namespace genesys::neat;
using namespace genesys::nn;

namespace
{

constexpr uint64_t kFuzzBase = 0xD1B54A32D192ED03ULL;

/** Bit-pattern equality: exact, and NaN-safe unlike EXPECT_EQ. */
::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " != " << b << " (bits 0x" << std::hex
           << std::bit_cast<uint64_t>(a) << " vs 0x"
           << std::bit_cast<uint64_t>(b) << ")";
}

/** A recurrent config with every activation/aggregation in play. */
NeatConfig
fuzzConfig(XorWow &rng)
{
    NeatConfig cfg;
    cfg.numInputs = rng.uniformInt(1, 6);
    cfg.numOutputs = rng.uniformInt(1, 4);
    cfg.numHidden = rng.uniformInt(0, 2);
    cfg.feedForward = false;
    cfg.initialConnection = InitialConnection::FullDirect;
    cfg.activation.options = allActivations();
    cfg.activation.mutateRate = 0.5;
    cfg.aggregation.options = {
        Aggregation::Sum,    Aggregation::Product, Aggregation::Max,
        Aggregation::Min,    Aggregation::Mean,    Aggregation::Median,
        Aggregation::MaxAbs,
    };
    cfg.aggregation.mutateRate = 0.5;
    cfg.enabled.mutateRate = 0.2;
    cfg.weight.initStdev = 2.0;
    return cfg;
}

/**
 * Random cyclic genome: mutation-grown under feedForward == false
 * (add-connection may create cycles), then structurally perturbed
 * with hostile shapes — disabled connections, dangling hidden nodes,
 * explicit self-loops and two-node cycles.
 */
Genome
fuzzGenome(const NeatConfig &cfg, XorWow &rng)
{
    NodeIndexer idx(cfg.numOutputs);
    Genome g = Genome::createNew(0, cfg, idx, rng);
    const int mutations = rng.uniformInt(0, 25);
    for (int m = 0; m < mutations; ++m)
        g.mutate(cfg, idx, rng);

    for (auto &&[ck, cg] : g.mutableConnections()) {
        if (rng.bernoulli(0.1))
            cg.enabled = false;
    }

    auto link = [&](int s, int d) {
        ConnectionGene c;
        c.key = {s, d};
        c.weight = rng.gaussian();
        g.mutableConnections().emplace(c.key, c);
    };

    // Output self-loop: the canonical single-node cycle.
    if (rng.bernoulli(0.5))
        link(0, 0);
    // Two-node cycle feeding an output.
    if (rng.bernoulli(0.6)) {
        const int a = idx.next();
        const int b = idx.next();
        g.mutableNodes().emplace(a, NodeGene::createNew(a, cfg, rng));
        g.mutableNodes().emplace(b, NodeGene::createNew(b, cfg, rng));
        link(a, b);
        link(b, a);
        link(-1, a);
        link(b, 0);
    }
    // Dangling hidden node with only an inbound edge.
    if (rng.bernoulli(0.4)) {
        const int dead = idx.next();
        g.mutableNodes().emplace(dead,
                                 NodeGene::createNew(dead, cfg, rng));
        link(-1, dead);
    }
    // Node fed by an out-of-graph source (the -1 slot sentinel case).
    if (rng.bernoulli(0.4)) {
        const int orphan = idx.next();
        g.mutableNodes().emplace(orphan,
                                 NodeGene::createNew(orphan, cfg, rng));
        link(orphan + 1000, orphan); // dangling source key
        link(orphan, 0);
    }
    // Fully isolated hidden node (still updates every tick).
    if (rng.bernoulli(0.3)) {
        const int iso = idx.next();
        g.mutableNodes().emplace(iso, NodeGene::createNew(iso, cfg, rng));
    }
    return g;
}

std::vector<double>
randomInputs(const NeatConfig &cfg, XorWow &rng)
{
    std::vector<double> in(static_cast<size_t>(cfg.numInputs));
    for (auto &x : in)
        x = rng.uniform(-5.0, 5.0);
    return in;
}

} // namespace

// --- the differential fuzz ---------------------------------------------------

TEST(RecurrentPlanFuzz, MatchesInterpreterAcrossTicksAndReset)
{
    constexpr int kGenomes = 1000;
    constexpr int kTicks = 6;
    CompileScratch compile_scratch; // shared: reuse must not corrupt
    for (int i = 0; i < kGenomes; ++i) {
        XorWow rng(deriveSeed(kFuzzBase, static_cast<uint64_t>(i)));
        const NeatConfig cfg = fuzzConfig(rng);
        const Genome g = fuzzGenome(cfg, rng);
        SCOPED_TRACE("fuzz genome " + std::to_string(i));

        auto net = RecurrentNetwork::create(g, cfg);
        const auto plan =
            CompiledPlan::compileRecurrent(g, cfg, compile_scratch);

        ASSERT_TRUE(plan.isRecurrent());
        ASSERT_EQ(plan.numInputs(), net.numInputs());
        ASSERT_EQ(plan.numOutputs(), net.numOutputs());
        EXPECT_EQ(plan.macsPerInference(), net.macsPerInference());

        // Two stateful episodes over the same input stream, separated
        // by reset(): outputs must match the interpreter tick for
        // tick, and the second episode must replay the first exactly
        // (reset really clears all state on both paths).
        std::vector<std::vector<double>> stream;
        stream.reserve(kTicks);
        for (int t = 0; t < kTicks; ++t)
            stream.push_back(randomInputs(cfg, rng));

        PlanScratch scratch;
        std::vector<std::vector<double>> first_episode;
        for (int episode = 0; episode < 2; ++episode) {
            net.reset();
            plan.reset(scratch);
            for (int t = 0; t < kTicks; ++t) {
                const auto expect = net.activate(stream[static_cast<size_t>(t)]);
                plan.activateRecurrent(stream[static_cast<size_t>(t)],
                                       scratch);
                ASSERT_EQ(scratch.outputs.size(), expect.size());
                for (size_t o = 0; o < expect.size(); ++o) {
                    EXPECT_TRUE(bitEqual(scratch.outputs[o], expect[o]))
                        << "episode " << episode << " tick " << t
                        << " output " << o;
                }
                if (episode == 0)
                    first_episode.push_back(scratch.outputs);
                else
                    EXPECT_EQ(scratch.outputs,
                              first_episode[static_cast<size_t>(t)])
                        << "reset did not clear state at tick " << t;
            }
        }
    }
}

TEST(RecurrentPlanFuzz, MacCountsAgreeAcrossAllPaths)
{
    // Satellite fix: the interpreter's macsPerInference, the plan's,
    // and the plan's embedded ADAM schedule must agree per tick, so
    // hw cost modeling cannot drift between execution paths.
    constexpr int kGenomes = 300;
    for (int i = 0; i < kGenomes; ++i) {
        XorWow rng(deriveSeed(kFuzzBase ^ 0x77AA, static_cast<uint64_t>(i)));
        const NeatConfig cfg = fuzzConfig(rng);
        const Genome g = fuzzGenome(cfg, rng);
        SCOPED_TRACE("mac genome " + std::to_string(i));

        const auto net = RecurrentNetwork::create(g, cfg);
        const auto plan = CompiledPlan::compileRecurrent(g, cfg);

        EXPECT_EQ(plan.macsPerInference(), net.macsPerInference());
        EXPECT_EQ(plan.schedule().totalMacs(), plan.macsPerInference());
        // Recurrent inference is one ready wave per tick: every node
        // gene updates simultaneously from the previous tick.
        ASSERT_LE(plan.schedule().layers.size(), 1u);
        if (!plan.schedule().layers.empty()) {
            EXPECT_EQ(plan.schedule().layers[0].numNodes,
                      static_cast<int>(g.nodes().size()));
            EXPECT_EQ(plan.layerSpans().size(), 1u);
        }
    }
}

TEST(RecurrentPlanFuzz, BatchedLanesMatchSerialWithMasks)
{
    // The batched kernel drives L lanes with distinct input streams
    // and retires them at different ticks; every lane must match a
    // serial plan run of the same stream bit for bit, and a lane's
    // retirement must not perturb the survivors.
    constexpr int kGenomes = 200;
    constexpr int kLanes = 4;
    constexpr int kTicks = 6;
    for (int i = 0; i < kGenomes; ++i) {
        XorWow rng(deriveSeed(kFuzzBase ^ 0x1234, static_cast<uint64_t>(i)));
        const NeatConfig cfg = fuzzConfig(rng);
        const Genome g = fuzzGenome(cfg, rng);
        SCOPED_TRACE("batch genome " + std::to_string(i));

        const auto plan = CompiledPlan::compileRecurrent(g, cfg);

        // Lane l retires after kTicks - l ticks.
        std::vector<std::vector<std::vector<double>>> streams(kLanes);
        for (int l = 0; l < kLanes; ++l) {
            for (int t = 0; t < kTicks - l; ++t)
                streams[static_cast<size_t>(l)].push_back(
                    randomInputs(cfg, rng));
        }

        // Serial references.
        std::vector<std::vector<std::vector<double>>> expect(kLanes);
        PlanScratch serial;
        for (int l = 0; l < kLanes; ++l) {
            plan.reset(serial);
            for (const auto &in : streams[static_cast<size_t>(l)]) {
                plan.activateRecurrent(in, serial);
                expect[static_cast<size_t>(l)].push_back(serial.outputs);
            }
        }

        BatchScratch batch;
        plan.beginBatch(kLanes, batch);
        std::vector<uint8_t> active(kLanes, 1);
        for (int t = 0; t < kTicks; ++t) {
            for (int l = 0; l < kLanes; ++l) {
                if (!active[static_cast<size_t>(l)])
                    continue;
                const auto &in =
                    streams[static_cast<size_t>(l)][static_cast<size_t>(t)];
                for (size_t x = 0; x < in.size(); ++x)
                    batch.inputs[x * kLanes +
                                 static_cast<size_t>(l)] = in[x];
            }
            plan.activateBatch(kLanes, active.data(), batch);
            for (int l = 0; l < kLanes; ++l) {
                if (!active[static_cast<size_t>(l)])
                    continue;
                const auto &want =
                    expect[static_cast<size_t>(l)][static_cast<size_t>(t)];
                for (size_t o = 0; o < want.size(); ++o) {
                    EXPECT_TRUE(bitEqual(
                        batch.outputs[o * kLanes + static_cast<size_t>(l)],
                        want[o]))
                        << "lane " << l << " tick " << t << " output "
                        << o;
                }
                if (t + 1 >= kTicks - l)
                    active[static_cast<size_t>(l)] = 0; // retire
            }
        }
    }
}

// --- targeted recurrent plan semantics ---------------------------------------

namespace
{

NeatConfig
recConfig()
{
    NeatConfig cfg;
    cfg.numInputs = 1;
    cfg.numOutputs = 1;
    cfg.feedForward = false;
    return cfg;
}

/** Output node 0 with a self-loop of weight w plus input -1. */
Genome
selfLoopGenome(double w_self, double w_in)
{
    Genome g(0);
    NodeGene out;
    out.key = 0;
    out.activation = Activation::Identity;
    g.mutableNodes().emplace(0, out);
    ConnectionGene self;
    self.key = {0, 0};
    self.weight = w_self;
    ConnectionGene in;
    in.key = {-1, 0};
    in.weight = w_in;
    g.mutableConnections().emplace(self.key, self);
    g.mutableConnections().emplace(in.key, in);
    return g;
}

} // namespace

TEST(RecurrentPlan, SelfLoopIntegratesInput)
{
    const auto cfg = recConfig();
    const auto plan =
        CompiledPlan::compileRecurrent(selfLoopGenome(1.0, 1.0), cfg);
    PlanScratch s;
    plan.reset(s);
    // y[t] = y[t-1] + x[t] -> a running sum.
    plan.activateRecurrent({1.0}, s);
    EXPECT_NEAR(s.outputs[0], 1.0, 1e-12);
    plan.activateRecurrent({1.0}, s);
    EXPECT_NEAR(s.outputs[0], 2.0, 1e-12);
    plan.activateRecurrent({1.0}, s);
    EXPECT_NEAR(s.outputs[0], 3.0, 1e-12);

    plan.reset(s);
    plan.activateRecurrent({1.0}, s);
    EXPECT_NEAR(s.outputs[0], 1.0, 1e-12);
}

TEST(RecurrentPlan, CompileForDispatchesOnConfigMode)
{
    auto cfg = recConfig();
    const Genome g = selfLoopGenome(0.5, 1.0);

    const auto rec = CompiledPlan::compileFor(g, cfg);
    EXPECT_TRUE(rec.isRecurrent());

    cfg.feedForward = true;
    const auto ff = CompiledPlan::compileFor(g, cfg);
    EXPECT_FALSE(ff.isRecurrent());
    // Feed-forward lowering of a cyclic genome: the cycle never
    // becomes ready, the output reads 0 (documented fallback
    // semantics, unchanged).
    EXPECT_DOUBLE_EQ(ff.activate({1.0})[0], 0.0);
}

TEST(RecurrentPlan, FeedForwardEntryPointsRejectWrongMode)
{
    const auto cfg = recConfig();
    const auto plan =
        CompiledPlan::compileRecurrent(selfLoopGenome(1.0, 1.0), cfg);
    PlanScratch s;
    // Ticking without reset is a contract violation, not silent UB.
    EXPECT_ANY_THROW(plan.activateRecurrent({1.0}, s));

    auto ffCfg = cfg;
    ffCfg.feedForward = true;
    const auto ff = CompiledPlan::compile(selfLoopGenome(1.0, 1.0), ffCfg);
    EXPECT_ANY_THROW(ff.activateRecurrent({1.0}, s));
}

TEST(RecurrentPlan, PlanCacheServesRecurrentPlansWithCarryOver)
{
    const auto cfg = recConfig();
    const Genome g = selfLoopGenome(1.0, 1.0);

    PlanCache cache;
    const auto p1 = cache.acquire(7, g, cfg);
    ASSERT_TRUE(p1->isRecurrent());
    EXPECT_EQ(cache.compiles(), 1);

    // Same key next generation (an elite): carried over, no recompile.
    cache.beginGeneration({7});
    const auto p2 = cache.acquire(7, g, cfg);
    EXPECT_EQ(p2.get(), p1.get());
    EXPECT_EQ(cache.compiles(), 1);
    EXPECT_EQ(cache.carriedOver(), 1);

    PlanScratch s;
    p2->reset(s);
    p2->activateRecurrent({1.0}, s);
    EXPECT_NEAR(s.outputs[0], 1.0, 1e-12);
    p2->activateRecurrent({1.0}, s);
    EXPECT_NEAR(s.outputs[0], 2.0, 1e-12);
}
