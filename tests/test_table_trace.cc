/**
 * @file
 * Tests for the table printer and the EvolutionTrace accessors.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"
#include "neat/trace.hh"

using namespace genesys;

TEST(TableTest, AlignsColumns)
{
    Table t("demo");
    t.setHeader({"a", "long-header", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"wide-cell", "x", "y"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
    // Each printed line of the body is equally padded: find rows.
    EXPECT_NE(out.find("wide-cell"), std::string::npos);
}

TEST(TableTest, CsvOutput)
{
    Table t;
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.writeCsv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(TableTest, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::integer(42), "42");
    EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

TEST(TableTest, RowsWithoutHeader)
{
    Table t;
    t.addRow({"only", "rows"});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_EQ(oss.str(), "only  rows  \n");
}

namespace
{

neat::EvolutionTrace
demoTrace()
{
    neat::EvolutionTrace t;
    t.generation = 3;
    auto child = [](int key, int p1, int p2, bool elite) {
        neat::ChildRecord c;
        c.childKey = key;
        c.parent1Key = p1;
        c.parent2Key = p2;
        c.isElite = elite;
        c.parent1Genes = 10;
        c.parent2Genes = 12;
        c.childNodeGenes = 3;
        c.childConnGenes = 9;
        c.ops.crossoverOps = 8;
        c.ops.perturbOps = 12;
        c.ops.addOps = elite ? 0 : 1;
        return c;
    };
    t.children.push_back(child(100, 1, 2, false));
    t.children.push_back(child(101, 1, 2, false));
    t.children.push_back(child(102, 1, 3, false));
    t.children.push_back(child(103, 4, 4, false)); // self-crossover
    t.children.push_back(child(1, 1, 1, true));    // elite
    return t;
}

} // namespace

TEST(TraceTest, TotalsAndBreakdown)
{
    const auto t = demoTrace();
    EXPECT_EQ(t.totalOps(), 5 * (8 + 12) + 4);
    const auto ops = t.opTotals();
    EXPECT_EQ(ops.crossoverOps, 40);
    EXPECT_EQ(ops.addOps, 4);
}

TEST(TraceTest, ParentUseCountsSkipElites)
{
    const auto t = demoTrace();
    const auto counts = t.parentUseCounts();
    EXPECT_EQ(counts.at(1), 3); // children 100, 101, 102
    EXPECT_EQ(counts.at(2), 2);
    EXPECT_EQ(counts.at(3), 1);
    EXPECT_EQ(counts.at(4), 1); // self-crossover counted once
    EXPECT_EQ(t.maxParentReuse(), 3);
    EXPECT_EQ(t.parentReuse(2), 2);
    EXPECT_EQ(t.parentReuse(999), 0);
}

TEST(TraceTest, GeneStreamTotals)
{
    const auto t = demoTrace();
    // Elites stream nothing; 4 children x (10 + 12).
    EXPECT_EQ(t.totalParentGenesStreamed(), 4 * 22);
    // All 5 children (incl. elite) have 12 genes.
    EXPECT_EQ(t.totalChildGenes(), 5 * 12);
}

TEST(TraceTest, EmptyTrace)
{
    neat::EvolutionTrace t;
    EXPECT_EQ(t.totalOps(), 0);
    EXPECT_EQ(t.maxParentReuse(), 0);
    EXPECT_TRUE(t.parentUseCounts().empty());
}
