/**
 * @file
 * Statistical tests of the EvE PE's stochastic engines: across many
 * children, the hardware's per-gene probability mechanisms must
 * reproduce the configured rates — the property that makes the
 * trace-driven performance model representative of the functional
 * pipeline.
 */

#include <gtest/gtest.h>

#include "hw/eve_pe.hh"
#include "hw/gene_merge.hh"
#include "hw/gene_split.hh"

using namespace genesys;
using namespace genesys::hw;

namespace
{

GeneCodec codec;

struct PeStatsFixture : ::testing::Test
{
    PeStatsFixture()
    {
        cfg.numInputs = 8;
        cfg.numOutputs = 4;
        neat::NodeIndexer idx(cfg.numOutputs);
        XorWow rng(1);
        parent = neat::Genome::createNew(0, cfg, idx, rng);
        for (int i = 0; i < 10; ++i)
            parent.mutateAddNode(cfg, idx, rng);
        stream = alignStreams(codec.encodeGenome(parent, cfg),
                              codec.encodeGenome(parent, cfg), codec);
    }

    neat::NeatConfig cfg;
    neat::Genome parent;
    std::vector<GenePair> stream;
};

} // namespace

TEST_F(PeStatsFixture, ConnDeleteRateHonored)
{
    PeConfig pcfg;
    pcfg.perturbProb = 0.0;
    pcfg.nodeDeleteProb = 0.0;
    pcfg.nodeAddProb = 0.0;
    pcfg.connAddProb = 0.0;
    pcfg.connDeleteProb = 0.10;
    EvePe pe(codec, pcfg, 42);

    long deleted = 0, total = 0;
    const long conns = static_cast<long>(parent.numConnectionGenes());
    for (int child = 0; child < 400; ++child) {
        const auto res = pe.processChild(stream);
        deleted += res.ops.deleteOps;
        total += conns;
    }
    EXPECT_NEAR(static_cast<double>(deleted) / total, 0.10, 0.015);
}

TEST_F(PeStatsFixture, NodeAddRateHonored)
{
    PeConfig pcfg;
    pcfg.perturbProb = 0.0;
    pcfg.nodeDeleteProb = 0.0;
    pcfg.connDeleteProb = 0.0;
    pcfg.connAddProb = 0.0;
    pcfg.nodeAddProb = 0.05;
    EvePe pe(codec, pcfg, 43);

    long splits = 0, opportunities = 0;
    const long conns = static_cast<long>(parent.numConnectionGenes());
    for (int child = 0; child < 400; ++child) {
        const auto res = pe.processChild(stream);
        splits += res.ops.addOps / 3; // node add = 3 gene-ops
        opportunities += conns;
    }
    EXPECT_NEAR(static_cast<double>(splits) / opportunities, 0.05,
                0.01);
}

TEST_F(PeStatsFixture, CrossoverSelectionIsUnbiasedAtHalf)
{
    // Parents with distinguishable weights.
    auto p1 = parent;
    auto p2 = parent;
    for (auto &&[k, c] : p1.mutableConnections())
        c.weight = 2.0;
    for (auto &&[k, c] : p2.mutableConnections())
        c.weight = -2.0;
    const auto s = alignStreams(codec.encodeGenome(p1, cfg),
                                codec.encodeGenome(p2, cfg), codec);

    PeConfig pcfg;
    pcfg.perturbProb = 0.0;
    EvePe pe(codec, pcfg, 44);
    long from_p1 = 0, total = 0;
    for (int child = 0; child < 200; ++child) {
        const auto res = pe.processChild(s);
        for (const auto g : res.childGenes) {
            if (g.isConnection()) {
                ++total;
                if (codec.decodeConnection(g).weight > 0)
                    ++from_p1;
            }
        }
    }
    EXPECT_NEAR(static_cast<double>(from_p1) / total, 0.5, 0.02);
}

TEST_F(PeStatsFixture, PerturbationIsZeroMean)
{
    PeConfig pcfg;
    pcfg.perturbProb = 1.0;
    pcfg.perturbPower = 0.5;
    pcfg.nodeDeleteProb = pcfg.connDeleteProb = 0.0;
    pcfg.nodeAddProb = pcfg.connAddProb = 0.0;
    EvePe pe(codec, pcfg, 45);

    double drift = 0.0;
    long n = 0;
    for (int child = 0; child < 200; ++child) {
        const auto res = pe.processChild(stream);
        for (const auto g : res.childGenes) {
            if (g.isConnection()) {
                drift += codec.decodeConnection(g).weight -
                         parent.connections()
                             .at({codec.connectionSource(g),
                                  codec.connectionDest(g)})
                             .weight;
                ++n;
            }
        }
    }
    EXPECT_NEAR(drift / static_cast<double>(n), 0.0, 0.02);
}

TEST_F(PeStatsFixture, ChildSizeStableUnderBalancedRates)
{
    // With matched add/delete pressure the expected genome size is
    // roughly conserved over a single pipeline pass.
    PeConfig pcfg;
    pcfg.perturbProb = 0.5;
    pcfg.connDeleteProb = 0.02;
    pcfg.connAddProb = 0.02;
    pcfg.nodeAddProb = 0.0;
    pcfg.nodeDeleteProb = 0.0;
    EvePe pe(codec, pcfg, 46);

    double mean_size = 0.0;
    const int children = 300;
    for (int child = 0; child < children; ++child) {
        const auto res = pe.processChild(stream);
        const auto merged = mergeChild(res.childGenes, codec);
        mean_size += static_cast<double>(merged.genome.size());
    }
    mean_size /= children;
    EXPECT_NEAR(mean_size, static_cast<double>(parent.numGenes()),
                parent.numGenes() * 0.05);
}

TEST_F(PeStatsFixture, EveryChildDecodesToValidGenome)
{
    PeConfig pcfg = peConfigFrom(cfg, stream.size());
    EvePe pe(codec, pcfg, 47);
    auto relaxed = cfg;
    relaxed.feedForward = false;
    for (int child = 0; child < 100; ++child) {
        const auto res = pe.processChild(stream);
        const auto merged = mergeChild(res.childGenes, codec);
        const auto g = codec.decodeGenome(merged.genome, child);
        g.validate(relaxed);
    }
}
