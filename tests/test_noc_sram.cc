/**
 * @file
 * Tests for the NoC traffic models (Fig 11(b)) and the Genome Buffer.
 */

#include <gtest/gtest.h>

#include "hw/noc.hh"
#include "hw/sram.hh"

using namespace genesys;
using namespace genesys::hw;

namespace
{

neat::EvolutionTrace
sharedParentTrace(int children, int parent_genes)
{
    neat::EvolutionTrace t;
    for (int i = 0; i < children; ++i) {
        neat::ChildRecord c;
        c.childKey = 100 + i;
        c.parent1Key = 1; // everyone shares the same two parents
        c.parent2Key = 2;
        c.parent1Genes = static_cast<size_t>(parent_genes);
        c.parent2Genes = static_cast<size_t>(parent_genes);
        c.alignedStreamLen = static_cast<size_t>(parent_genes);
        c.childNodeGenes = 2;
        c.childConnGenes = static_cast<size_t>(parent_genes) - 2;
        t.children.push_back(c);
    }
    return t;
}

std::vector<size_t>
allIndices(const neat::EvolutionTrace &t)
{
    std::vector<size_t> idx;
    for (size_t i = 0; i < t.children.size(); ++i)
        idx.push_back(i);
    return idx;
}

} // namespace

TEST(NocTraffic, PointToPointReadsScaleWithConsumers)
{
    const auto trace = sharedParentTrace(16, 100);
    const auto t = waveTraffic(NocTopology::PointToPoint, trace,
                               allIndices(trace));
    EXPECT_EQ(t.sramReads, 16 * 200);
    EXPECT_EQ(t.deliveries, 16 * 200);
}

TEST(NocTraffic, MulticastReadsOncePerParent)
{
    const auto trace = sharedParentTrace(16, 100);
    const auto t = waveTraffic(NocTopology::MulticastTree, trace,
                               allIndices(trace));
    // Two distinct parents, each read once.
    EXPECT_EQ(t.sramReads, 200);
    // Deliveries unchanged: every PE still consumes its stream.
    EXPECT_EQ(t.deliveries, 16 * 200);
}

TEST(NocTraffic, MulticastSavingsGrowWithSharing)
{
    const auto trace = sharedParentTrace(64, 100);
    const auto p2p = waveTraffic(NocTopology::PointToPoint, trace,
                                 allIndices(trace));
    const auto mc = waveTraffic(NocTopology::MulticastTree, trace,
                                allIndices(trace));
    EXPECT_EQ(p2p.sramReads / mc.sramReads, 64);
}

TEST(NocTraffic, MulticastNoSavingsWithoutSharing)
{
    neat::EvolutionTrace t;
    for (int i = 0; i < 8; ++i) {
        neat::ChildRecord c;
        c.childKey = 100 + i;
        c.parent1Key = 2 * i;     // all-distinct parents
        c.parent2Key = 2 * i + 1;
        c.parent1Genes = 50;
        c.parent2Genes = 50;
        t.children.push_back(c);
    }
    const auto idx = allIndices(t);
    EXPECT_EQ(waveTraffic(NocTopology::PointToPoint, t, idx).sramReads,
              waveTraffic(NocTopology::MulticastTree, t, idx).sramReads);
}

TEST(NocTraffic, SelfCrossoverCountsParentOnce)
{
    neat::EvolutionTrace t;
    neat::ChildRecord c;
    c.childKey = 10;
    c.parent1Key = c.parent2Key = 3;
    c.parent1Genes = c.parent2Genes = 40;
    t.children.push_back(c);
    const auto mc =
        waveTraffic(NocTopology::MulticastTree, t, {0});
    EXPECT_EQ(mc.sramReads, 40); // one parent genome, one read pass
}

TEST(GenomeBufferTest, CapacityAndFit)
{
    GenomeBuffer buf(1536, 48);
    EXPECT_EQ(buf.capacityBytes(), 1536L * 1024);
    EXPECT_TRUE(buf.fits(1024 * 1024));
    EXPECT_FALSE(buf.fits(2 * 1024 * 1024));
    EXPECT_EQ(buf.dramSpillBytes(1024), 0);
    EXPECT_EQ(buf.dramSpillBytes(buf.capacityBytes() + 100), 100);
}

TEST(GenomeBufferTest, BankBandwidthLimit)
{
    GenomeBuffer buf(1536, 48);
    EXPECT_EQ(buf.readsPerCycleLimit(), 48);
    // Compute-bound: few reads, many compute cycles.
    EXPECT_EQ(buf.serveCycles(100, 1000), 1000);
    // Bandwidth-bound: 9600 reads / 48 banks = 200 > 100 compute.
    EXPECT_EQ(buf.serveCycles(9600, 100), 200);
    // Rounds up.
    EXPECT_EQ(buf.serveCycles(49, 0), 2);
}

TEST(GenomeBufferTest, PaperGenerationFitsOnChip)
{
    // Section III-D1: per-generation footprint < 1 MB across the
    // OpenAI suite; the 1.5 MB buffer holds it.
    GenomeBuffer buf(1536, 48);
    const long atari_generation = 150 * 800 * 8; // genes x 8 B
    EXPECT_TRUE(buf.fits(atari_generation));
}
