/**
 * @file
 * Tests for phenotype construction: required-node analysis,
 * topological layering, and network evaluation (including the
 * levelizer that feeds ADAM).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/levelize.hh"

using namespace genesys;
using namespace genesys::neat;
using namespace genesys::nn;

namespace
{

NeatConfig
netConfig(int inputs = 2, int outputs = 1)
{
    NeatConfig cfg;
    cfg.numInputs = inputs;
    cfg.numOutputs = outputs;
    return cfg;
}

/** Hand-built genome: -1,-2 -> hidden 1 -> output 0, plus -2 -> 0. */
Genome
handGenome(const NeatConfig &cfg)
{
    Genome g(0);
    NodeGene out;
    out.key = 0;
    out.bias = 0.0;
    out.response = 1.0;
    out.activation = Activation::Identity;
    NodeGene hid = out;
    hid.key = 1;
    g.mutableNodes().emplace(0, out);
    g.mutableNodes().emplace(1, hid);

    auto conn = [](int a, int b, double w) {
        ConnectionGene c;
        c.key = {a, b};
        c.weight = w;
        c.enabled = true;
        return c;
    };
    g.mutableConnections().emplace(ConnKey{-1, 1}, conn(-1, 1, 2.0));
    g.mutableConnections().emplace(ConnKey{-2, 1}, conn(-2, 1, 3.0));
    g.mutableConnections().emplace(ConnKey{1, 0}, conn(1, 0, 0.5));
    g.mutableConnections().emplace(ConnKey{-2, 0}, conn(-2, 0, -1.0));
    g.validate(cfg);
    return g;
}

} // namespace

TEST(RequiredForOutput, PrunesDeadBranches)
{
    const auto cfg = netConfig();
    auto g = handGenome(cfg);
    // Dead-end hidden node 2: fed by input but feeds nothing.
    NodeGene dead;
    dead.key = 2;
    g.mutableNodes().emplace(2, dead);
    ConnectionGene c;
    c.key = {-1, 2};
    c.enabled = true;
    g.mutableConnections().emplace(c.key, c);

    const auto req = requiredForOutput(g, cfg);
    EXPECT_TRUE(req.count(0));
    EXPECT_TRUE(req.count(1));
    EXPECT_FALSE(req.count(2));
}

TEST(RequiredForOutput, DisabledConnectionsDoNotCount)
{
    const auto cfg = netConfig();
    auto g = handGenome(cfg);
    // Disable the only edge out of node 1 -> node 1 not required.
    g.mutableConnections().at({1, 0}).enabled = false;
    const auto req = requiredForOutput(g, cfg);
    EXPECT_FALSE(req.count(1));
}

TEST(FeedForwardLayers, TwoLayerStructure)
{
    const auto cfg = netConfig();
    const auto g = handGenome(cfg);
    const auto layers = feedForwardLayers(g, cfg);
    ASSERT_EQ(layers.size(), 2u);
    EXPECT_EQ(layers[0], std::vector<int>{1});
    EXPECT_EQ(layers[1], std::vector<int>{0});
}

TEST(FeedForwardLayers, DirectOnlyIsSingleLayer)
{
    const auto cfg = netConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(1);
    const auto g = Genome::createNew(0, cfg, idx, rng);
    const auto layers = feedForwardLayers(g, cfg);
    ASSERT_EQ(layers.size(), 1u);
    EXPECT_EQ(layers[0], std::vector<int>{0});
}

TEST(FeedForwardNetwork, EvaluatesHandGenomeExactly)
{
    const auto cfg = netConfig();
    const auto g = handGenome(cfg);
    const auto net = FeedForwardNetwork::create(g, cfg);
    // hidden = 2*x1 + 3*x2 ; out = 0.5*hidden - 1.0*x2
    const auto out = net.activate({1.0, 2.0});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0], 0.5 * (2.0 + 6.0) - 2.0, 1e-12);
}

TEST(FeedForwardNetwork, BiasAndResponseApplied)
{
    const auto cfg = netConfig(1, 1);
    Genome g(0);
    NodeGene out;
    out.key = 0;
    out.bias = 2.0;
    out.response = 3.0;
    out.activation = Activation::Identity;
    g.mutableNodes().emplace(0, out);
    ConnectionGene c;
    c.key = {-1, 0};
    c.weight = 4.0;
    c.enabled = true;
    g.mutableConnections().emplace(c.key, c);
    const auto net = FeedForwardNetwork::create(g, cfg);
    // out = bias + response * (w * x) = 2 + 3 * 4 * 5.
    EXPECT_NEAR(net.activate({5.0})[0], 62.0, 1e-12);
}

TEST(FeedForwardNetwork, DisabledConnectionContributesNothing)
{
    const auto cfg = netConfig();
    auto g = handGenome(cfg);
    g.mutableConnections().at({-2, 0}).enabled = false;
    const auto net = FeedForwardNetwork::create(g, cfg);
    const auto out = net.activate({1.0, 2.0});
    EXPECT_NEAR(out[0], 0.5 * (2.0 + 6.0), 1e-12);
}

TEST(FeedForwardNetwork, UnreachableOutputReadsZero)
{
    const auto cfg = netConfig(2, 2);
    auto g = handGenome(cfg);
    // Output 1 exists but has no inbound connections.
    NodeGene out1;
    out1.key = 1;
    // handGenome made node 1 a hidden node; rebuild cleanly instead.
    Genome g2(0);
    NodeGene o0;
    o0.key = 0;
    o0.activation = Activation::Identity;
    NodeGene o1 = o0;
    o1.key = 1;
    g2.mutableNodes().emplace(0, o0);
    g2.mutableNodes().emplace(1, o1);
    ConnectionGene c;
    c.key = {-1, 0};
    c.weight = 1.0;
    c.enabled = true;
    g2.mutableConnections().emplace(c.key, c);
    const auto net = FeedForwardNetwork::create(g2, cfg);
    const auto out = net.activate({3.0, 0.0});
    EXPECT_NEAR(out[0], 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(FeedForwardNetwork, WrongInputCountThrows)
{
    const auto cfg = netConfig();
    const auto net = FeedForwardNetwork::create(handGenome(cfg), cfg);
    EXPECT_ANY_THROW(net.activate({1.0}));
}

TEST(FeedForwardNetwork, MacsPerInferenceCountsEnabledLinks)
{
    const auto cfg = netConfig();
    const auto net = FeedForwardNetwork::create(handGenome(cfg), cfg);
    EXPECT_EQ(net.macsPerInference(), 4);
}

TEST(FeedForwardNetwork, SigmoidOutputsBounded)
{
    const auto cfg = netConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(5);
    auto g = Genome::createNew(0, cfg, idx, rng);
    for (int i = 0; i < 20; ++i)
        g.mutate(cfg, idx, rng);
    const auto net = FeedForwardNetwork::create(g, cfg);
    for (double x = -3; x <= 3; x += 0.7) {
        const auto out = net.activate({x, -x});
        EXPECT_GE(out[0], 0.0);
        EXPECT_LE(out[0], 1.0);
    }
}

// --- layer-structure regression (analyzeGenome rewrite) ---------------------

TEST(FeedForwardLayers, PinnedDiamondWithSkipsAndDeadBranches)
{
    // Regression pin for the one-pass analyzeGenome rewrite: a
    // diamond with a skip edge, a dead-end hidden node and a
    // never-ready hidden node. The layer structure is part of the
    // plan/interpreter slot contract, so it is pinned exactly.
    //
    //   -1 -> 1 -> 3 ---> 0        (diamond arms 1/2, join 3)
    //   -2 -> 2 ----^
    //   -1 -------------> 0        (skip edge)
    //   -2 -> 4                    (dead end: not required)
    //    5 -> 3                    (5 has no inputs: never ready...
    //                               ...and blocks nothing else)
    const auto cfg = netConfig(2, 1);
    Genome g(0);
    for (int nk : {0, 1, 2, 3, 4, 5}) {
        NodeGene n;
        n.key = nk;
        n.activation = Activation::Identity;
        g.mutableNodes().emplace(nk, n);
    }
    auto conn = [&g](int a, int b) {
        ConnectionGene c;
        c.key = {a, b};
        c.weight = 1.0;
        g.mutableConnections().emplace(c.key, c);
    };
    conn(-1, 1);
    conn(-2, 2);
    conn(1, 3);
    conn(2, 3);
    conn(3, 0);
    conn(-1, 0);
    conn(-2, 4);
    conn(5, 3);

    const auto analysis = analyzeGenome(g, cfg);
    // 5 feeds 3, so it is required; 4 feeds nothing, so it is not.
    EXPECT_EQ(analysis.required, (std::set<int>{0, 1, 2, 3, 5}));
    // Node 5 has no inbound edges, so it never becomes ready; node 3
    // waits on it forever, and output 0 waits on 3 (the skip edge
    // alone cannot ready a node that also reads 3). Pinned: only the
    // diamond arms make it into layers.
    const std::vector<std::vector<int>> expect{{1, 2}};
    EXPECT_EQ(analysis.layers, expect);

    // Removing the blocker unblocks the full diamond shape.
    g.mutableConnections().at({5, 3}).enabled = false;
    const auto unblocked = analyzeGenome(g, cfg);
    const std::vector<std::vector<int>> expect2{{1, 2}, {3}, {0}};
    EXPECT_EQ(unblocked.layers, expect2);
    EXPECT_EQ(unblocked.required, (std::set<int>{0, 1, 2, 3}));

    // The wrappers agree with the combined analysis.
    EXPECT_EQ(feedForwardLayers(g, cfg), unblocked.layers);
    EXPECT_EQ(requiredForOutput(g, cfg), unblocked.required);
}

TEST(FeedForwardLayers, ZeroInEdgeNodesNeverLayered)
{
    // A hidden node with no enabled inbound edges must not appear in
    // any layer even though its in-degree is trivially "satisfied".
    const auto cfg = netConfig(1, 1);
    Genome g(0);
    NodeGene out;
    out.key = 0;
    out.activation = Activation::Identity;
    NodeGene orphan = out;
    orphan.key = 1;
    g.mutableNodes().emplace(0, out);
    g.mutableNodes().emplace(1, orphan);
    ConnectionGene a;
    a.key = {-1, 0};
    a.weight = 1.0;
    g.mutableConnections().emplace(a.key, a);
    ConnectionGene b;
    b.key = {1, 0};
    b.weight = 1.0;
    b.enabled = false; // 1 -> 0 disabled: 1 is not even required
    g.mutableConnections().emplace(b.key, b);

    const auto analysis = analyzeGenome(g, cfg);
    EXPECT_EQ(analysis.layers,
              (std::vector<std::vector<int>>{{0}}));
    EXPECT_FALSE(analysis.required.count(1));
}

// --- levelize -------------------------------------------------------------

TEST(Levelize, HandGenomeDims)
{
    const auto cfg = netConfig();
    const auto sched = levelize(handGenome(cfg), cfg);
    ASSERT_EQ(sched.layers.size(), 2u);
    // Layer 0: node 1 fed by {-1,-2}: M=1, K=2, 2 weights.
    EXPECT_EQ(sched.layers[0].numNodes, 1);
    EXPECT_EQ(sched.layers[0].vectorLen, 2);
    EXPECT_EQ(sched.layers[0].weights, 2);
    // Layer 1: node 0 fed by {1,-2}: M=1, K=2, 2 weights.
    EXPECT_EQ(sched.layers[1].numNodes, 1);
    EXPECT_EQ(sched.layers[1].vectorLen, 2);
    EXPECT_EQ(sched.layers[1].weights, 2);
    EXPECT_EQ(sched.totalMacs(), 4);
    EXPECT_EQ(sched.totalNodes(), 2);
    EXPECT_EQ(sched.denseCells(), 4);
    EXPECT_DOUBLE_EQ(sched.meanDensity(), 1.0);
}

TEST(Levelize, MacsMatchNetwork)
{
    const auto cfg = netConfig();
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(6);
    auto g = Genome::createNew(0, cfg, idx, rng);
    for (int i = 0; i < 30; ++i)
        g.mutate(cfg, idx, rng);
    const auto net = FeedForwardNetwork::create(g, cfg);
    const auto sched = levelize(g, cfg);
    EXPECT_EQ(sched.totalMacs(), net.macsPerInference());
}

TEST(Levelize, DensityAtMostOne)
{
    const auto cfg = netConfig(4, 3);
    NodeIndexer idx(cfg.numOutputs);
    XorWow rng(7);
    auto g = Genome::createNew(0, cfg, idx, rng);
    for (int i = 0; i < 40; ++i)
        g.mutate(cfg, idx, rng);
    const auto sched = levelize(g, cfg);
    for (const auto &l : sched.layers) {
        EXPECT_GT(l.density(), 0.0);
        EXPECT_LE(l.density(), 1.0);
    }
}
