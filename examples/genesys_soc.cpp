/**
 * @file
 * Hardware-centric example: drive the GeneSys SoC model directly.
 *
 *  1. Print the design point (area/power) for a configurable PE count.
 *  2. Push two real parent genomes through the *functional* EvE PE
 *     pipeline (Fig 7) — encode to the 64-bit gene format, align
 *     streams in the Gene Split unit, run the 4-stage pipeline, merge
 *     and decode the child — and show what each engine did.
 *  3. Compare the same generation under a point-to-point NoC vs the
 *     multicast tree.
 *
 * Build & run:  ./build/examples/genesys_soc [numEvePe]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "core/genesys.hh"
#include "hw/eve_pe.hh"
#include "hw/gene_merge.hh"
#include "hw/gene_split.hh"

using namespace genesys;
using namespace genesys::hw;

int
main(int argc, char **argv)
{
    SocParams soc;
    if (argc > 1)
        soc.numEvePe = std::atoi(argv[1]);
    EnergyModel energy;

    // --- 1: design point -------------------------------------------------
    {
        const auto p = energy.rooflinePower(soc);
        const auto a = energy.area(soc);
        std::cout << "GeneSys SoC @ " << soc.numEvePe << " EvE PEs, "
                  << soc.adamMacs() << " ADAM MACs, "
                  << soc.sramKiB / 1024.0 << " MB / " << soc.sramBanks
                  << "-bank Genome Buffer, "
                  << soc.frequencyHz / 1e6 << " MHz\n";
        std::cout << "  area  : " << Table::num(a.totalMm2(), 2)
                  << " mm2 (EvE " << Table::num(a.eveMm2, 2)
                  << ", ADAM " << Table::num(a.adamMm2, 2) << ", SRAM "
                  << Table::num(a.sramMm2, 2) << ")\n";
        std::cout << "  power : " << Table::num(p.totalMw(), 1)
                  << " mW roofline (EvE " << Table::num(p.eveMw, 1)
                  << ", ADAM " << Table::num(p.adamMw, 1) << ", SRAM "
                  << Table::num(p.sramMw, 1) << ")\n\n";
    }

    // --- 2: functional EvE pipeline on real genomes -----------------------
    {
        neat::NeatConfig ncfg;
        ncfg.numInputs = 4;
        ncfg.numOutputs = 2;
        ncfg.nodeAddProb = 0.4;
        ncfg.connAddProb = 0.4;
        neat::NodeIndexer idx(ncfg.numOutputs);
        XorWow rng(7);
        auto p1 = neat::Genome::createNew(0, ncfg, idx, rng);
        auto p2 = neat::Genome::createNew(1, ncfg, idx, rng);
        for (int i = 0; i < 12; ++i) {
            p1.mutate(ncfg, idx, rng);
            p2.mutate(ncfg, idx, rng);
        }

        GeneCodec codec;
        const auto s1 = codec.encodeGenome(p1, ncfg);
        const auto s2 = codec.encodeGenome(p2, ncfg);
        long align_cycles = 0;
        const auto stream = alignStreams(s1, s2, codec, &align_cycles);

        EvePe pe(codec, peConfigFrom(ncfg, stream.size()), 1234);
        const auto res = pe.processChild(stream);
        const auto merged = mergeChild(res.childGenes, codec);
        const auto child = codec.decodeGenome(merged.genome, 42);

        std::cout << "Functional EvE PE run (one child):\n";
        std::cout << "  parent 1: " << p1.numNodeGenes() << " nodes + "
                  << p1.numConnectionGenes() << " conns ("
                  << s1.size() * 8 << " B packed)\n";
        std::cout << "  parent 2: " << p2.numNodeGenes() << " nodes + "
                  << p2.numConnectionGenes() << " conns\n";
        std::cout << "  aligned stream: " << stream.size()
                  << " gene pairs (" << align_cycles
                  << " split cycles)\n";
        std::cout << "  pipeline: " << res.cycles << " cycles; ops = "
                  << res.ops.crossoverOps << " crossover, "
                  << res.ops.cloneOps << " clone, "
                  << res.ops.perturbOps << " perturb, " << res.ops.addOps
                  << " add, " << res.ops.deleteOps << " delete\n";
        std::cout << "  child: " << child.numNodeGenes() << " nodes + "
                  << child.numConnectionGenes() << " conns, "
                  << merged.sramWrites << " SRAM writes, "
                  << merged.duplicatesDropped << " dup dropped\n\n";
    }

    // --- 3: NoC comparison on a real generation ---------------------------
    {
        core::SystemConfig cfg;
        cfg.envName = "AirRaid-ram-v0";
        cfg.maxGenerations = 3;
        cfg.seed = 11;
        core::System sys(cfg);
        sys.run();
        const auto &trace = sys.population().traces().back();

        Table t("one AirRaid-RAM generation on EvE: NoC comparison (" +
                std::to_string(soc.numEvePe) + " PEs)");
        t.setHeader({"NoC", "cycles", "SRAM reads", "reads/cycle",
                     "SRAM energy uJ", "total energy uJ"});
        for (auto noc :
             {NocTopology::PointToPoint, NocTopology::MulticastTree}) {
            SocParams s = soc;
            s.noc = noc;
            const auto st =
                EveEngine(s, energy).simulateGeneration(trace);
            t.addRow({noc == NocTopology::PointToPoint
                          ? "point-to-point"
                          : "multicast tree",
                      Table::integer(st.cycles),
                      Table::integer(st.sramReads),
                      Table::num(st.readsPerCycle, 1),
                      Table::num(st.sramEnergyJ * 1e6, 2),
                      Table::num(st.totalEnergyJ() * 1e6, 2)});
        }
        t.print(std::cout);
    }
    return 0;
}
