/**
 * @file
 * Domain example: evolve a LunarLander controller, then replay the
 * best genome with an ASCII visualization of the landing trajectory.
 *
 * Demonstrates: workload presets, per-generation reports, genome
 * introspection, and manual episode stepping against the raw
 * Environment API.
 *
 * Build & run:  ./build/examples/lunar_lander [seed]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "core/genesys.hh"
#include "env/lunar_lander.hh"
#include "nn/feedforward.hh"

using namespace genesys;

namespace
{

void
drawFrame(double x, double y, bool thrust)
{
    // World x in [-1.5, 1.5], y in [0, 1.5]; pad at |x| <= 0.25.
    constexpr int w = 61, h = 12;
    const int col = static_cast<int>((x + 1.5) / 3.0 * (w - 1));
    const int row =
        h - 1 - static_cast<int>(std::min(y, 1.49) / 1.5 * (h - 1));
    for (int r = 0; r < h; ++r) {
        std::string line(w, ' ');
        if (r == row && col >= 0 && col < w)
            line[static_cast<size_t>(col)] = thrust ? 'A' : 'V';
        std::cout << "|" << line << "|\n";
    }
    std::string ground(w, '-');
    const int pad_lo = static_cast<int>((1.5 - 0.25) / 3.0 * (w - 1));
    const int pad_hi = static_cast<int>((1.5 + 0.25) / 3.0 * (w - 1));
    for (int c = pad_lo; c <= pad_hi && c < static_cast<int>(w); ++c)
        ground[static_cast<size_t>(c)] = '=';
    std::cout << "+" << ground << "+\n";
}

} // namespace

int
main(int argc, char **argv)
{
    core::SystemConfig cfg;
    cfg.envName = "LunarLander_v2";
    cfg.maxGenerations = 40;
    // Average fitness over two episodes so champions generalize
    // beyond a single initial condition.
    cfg.episodesPerEval = 2;
    cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

    std::cout << "Evolving a LunarLander-v2 controller (population 150, "
                 "target fitness 1.0 = gym's +200)...\n\n";
    core::System sys(cfg);
    const auto summary = sys.run();

    Table t("evolution progress");
    t.setHeader({"gen", "best", "mean", "species", "genes",
                 "max parent reuse"});
    for (const auto &r : sys.reports()) {
        if (r.algo.generation % 2 == 0 ||
            static_cast<size_t>(r.algo.generation) + 1 ==
                sys.reports().size()) {
            t.addRow({Table::integer(r.algo.generation),
                      Table::num(r.algo.bestFitness, 3),
                      Table::num(r.algo.meanFitness, 3),
                      Table::integer(r.algo.numSpecies),
                      Table::integer(r.algo.totalGenes),
                      Table::integer(r.algo.maxParentReuse)});
        }
    }
    t.print(std::cout);
    std::cout << "\nsolved: " << (summary.solved ? "yes" : "no")
              << ", best fitness " << summary.bestFitness << " after "
              << summary.generations << " generations\n\n";

    // Replay the champion on fresh initial conditions; visualize the
    // first successful descent (policies are stochastic-environment
    // specialists, so also report the success rate).
    const auto &best = sys.population().bestGenome();
    const auto net =
        nn::FeedForwardNetwork::create(best, sys.neatConfig());
    int landings = 0;
    uint64_t shown_seed = 0;
    for (uint64_t seed = 100; seed < 110; ++seed) {
        env::LunarLander probe;
        auto obs = probe.reset(seed);
        bool done = false;
        while (!done) {
            const auto a = env::decodeAction(probe.actionSpace(),
                                             net.activate(obs));
            const auto r = probe.step(a);
            obs = r.observation;
            done = r.done;
        }
        if (probe.landed()) {
            ++landings;
            if (!shown_seed)
                shown_seed = seed;
        }
    }
    std::cout << "replay: " << landings
              << "/10 fresh episodes landed\n\n";

    env::LunarLander env;
    auto obs = env.reset(shown_seed ? shown_seed : 100);
    bool done = false;
    int frame = 0;
    while (!done) {
        const auto action =
            env::decodeAction(env.actionSpace(), net.activate(obs));
        const auto r = env.step(action);
        if (frame % 30 == 0) {
            std::cout << "t=" << frame << "  x=" << Table::num(obs[0], 2)
                      << " y=" << Table::num(obs[1], 2)
                      << " action=" << action.discrete << "\n";
            drawFrame(obs[0], obs[1], action.discrete == 2);
        }
        obs = r.observation;
        done = r.done;
        ++frame;
    }
    std::cout << "\nfinal: " << (env.landed() ? "LANDED" : "crashed")
              << " at x=" << Table::num(obs[0], 2) << " after " << frame
              << " steps; episode fitness "
              << Table::num(env.episodeFitness(), 3) << "\n";
    std::cout << "champion genome: " << best.numNodeGenes()
              << " node genes, " << best.numConnectionGenes()
              << " connection genes\n";
    return 0;
}
