/**
 * @file
 * Domain example: continuous learning on a 128-byte RAM game — the
 * workload class that stresses gene-level parallelism (hundreds of
 * thousands of gene-ops per generation). Shows the evolved policy's
 * score trajectory and the hardware-side per-generation cost from
 * the SoC model.
 *
 * Build & run:  ./build/examples/atari_ram [variant 0-3] [generations]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "core/genesys.hh"
#include "env/atari_ram.hh"
#include "nn/feedforward.hh"

using namespace genesys;

int
main(int argc, char **argv)
{
    const int variant_idx =
        argc > 1 ? std::atoi(argv[1]) : 0;
    const int generations = argc > 2 ? std::atoi(argv[2]) : 10;
    const auto variant = static_cast<env::AtariVariant>(
        std::clamp(variant_idx, 0, 3));

    core::SystemConfig cfg;
    cfg.envName = env::atariVariantName(variant);
    cfg.maxGenerations = generations;
    cfg.seed = 1;

    std::cout << "Evolving " << cfg.envName << " (128-byte RAM in, "
              << env::AtariRam(variant).actionSpace().n
              << " buttons out)\n\n";
    core::System sys(cfg);
    sys.run();

    Table t("generation log (algorithm + hardware)");
    t.setHeader({"gen", "best fit", "genes", "gene-ops", "EvE cycles",
                 "EvE uJ", "ADAM cycles", "ADAM uJ", "DRAM KB"});
    for (const auto &r : sys.reports()) {
        t.addRow({Table::integer(r.algo.generation),
                  Table::num(r.algo.bestFitness, 3),
                  Table::integer(r.algo.totalGenes),
                  Table::integer(r.algo.evolutionOps),
                  Table::integer(r.hw.eve.cycles),
                  Table::num(r.hw.evolutionEnergyJ * 1e6, 2),
                  Table::integer(r.hw.adam.cycles),
                  Table::num(r.hw.inferenceEnergyJ * 1e6, 2),
                  Table::num(r.hw.eve.dramBytes / 1024.0, 0)});
    }
    t.print(std::cout);

    // Replay the champion and print its score trace.
    const auto &best = sys.population().bestGenome();
    const auto net =
        nn::FeedForwardNetwork::create(best, sys.neatConfig());
    env::AtariRam env(variant);
    auto obs = env.reset(99);
    bool done = false;
    long last_score = 0;
    std::cout << "\nchampion replay:\n";
    while (!done) {
        const auto action = env::decodeAction(env.actionSpace(),
                                              net.activate(obs));
        const auto r = env.step(action);
        obs = r.observation;
        done = r.done;
        if (env.score() != last_score) {
            std::cout << "  step " << env.stepsTaken() << ": score "
                      << env.score() << "\n";
            last_score = env.score();
        }
    }
    std::cout << "final score " << env.score() << " in "
              << env.stepsTaken() << " steps ("
              << (env.dead() ? "died" : "survived") << "); fitness "
              << Table::num(env.episodeFitness(), 3) << "\n";
    std::cout << "champion: " << best.numNodeGenes() << " nodes, "
              << best.numConnectionGenes() << " connections, "
              << best.memoryBytes() << " B in the Genome Buffer\n";
    return 0;
}
