/**
 * @file
 * Quickstart: evolve a CartPole controller with the GeneSys closed
 * loop — NEAT population, environment instances, and the SoC
 * hardware model — in ~20 lines of user code.
 *
 * Build & run:  ./build/examples/quickstart [seed] [maxGenerations] [resumeSnapshot]
 *
 * Set GENESYS_CHECKPOINT_DIR to write a persist:: snapshot at every
 * generation barrier; pass a snapshot path as the third argument to
 * resume it in a fresh process. A resumed run is bit-identical to the
 * uninterrupted one — the per-generation "digest gen" lines printed
 * below let CI diff the two.
 */

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/check.hh"
#include "common/table.hh"
#include "core/genesys.hh"

int
main(int argc, char **argv)
{
    using namespace genesys;

    core::SystemConfig cfg;
    cfg.envName = "CartPole_v0";
    cfg.maxGenerations =
        argc > 2 ? std::atoi(argv[2]) : 40;
    cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
    // Evaluate each generation on all hardware threads; fitness is
    // bit-identical to a serial (numThreads = 1) run.
    cfg.numThreads = 0;

    core::System sys(cfg);

    // Self-identifying log header: which correctness tooling this
    // binary carries (GENESYS_CHECKED build flag + env toggle, the
    // sanitizer it was compiled under, if any) and the numerics tier
    // the run resolved (config + GENESYS_NUMERICS override).
    std::cout << "build: checked="
              << (checkedBuild() ? (checksEnabled() ? "on" : "built-but-off")
                                 : "off")
              << " sanitizer=" << sanitizerName()
              << " numerics=" << nn::numericsTierName(sys.numericsTier())
              << "\n";
    if (argc > 3)
        sys.resumeFrom(argv[3]);
    core::RunSummary summary = sys.run();

    Table t("CartPole_v0 evolution (population 150)");
    t.setHeader({"gen", "best fitness", "mean fitness", "species",
                 "genes", "evo ops", "EvE us", "EvE uJ", "ADAM uJ"});
    for (const auto &r : sys.reports()) {
        t.addRow({Table::integer(r.algo.generation),
                  Table::num(r.algo.bestFitness, 1),
                  Table::num(r.algo.meanFitness, 2),
                  Table::integer(r.algo.numSpecies),
                  Table::integer(r.algo.totalGenes),
                  Table::integer(r.algo.evolutionOps),
                  Table::num(r.hw.evolutionSeconds * 1e6, 2),
                  Table::num(r.hw.evolutionEnergyJ * 1e6, 3),
                  Table::num(r.hw.inferenceEnergyJ * 1e6, 3)});
    }
    t.print(std::cout);

    std::cout << "\nsolved: " << (summary.solved ? "yes" : "no")
              << "  generations: " << summary.generations
              << "  best fitness: " << summary.bestFitness << "\n";

    // One deterministic digest line per generation (absolute
    // generation numbers, FNV-1a over the report's algorithm and
    // hardware fields). The CI kill/resume smoke concatenates these
    // from an interrupted + resumed pair of processes and diffs them
    // against one uninterrupted run.
    for (const auto &r : sys.reports()) {
        uint64_t h = 0xcbf29ce484222325ull;
        const auto fold = [&h](uint64_t v) {
            for (int b = 0; b < 8; ++b) {
                h ^= (v >> (8 * b)) & 0xffu;
                h *= 0x100000001b3ull;
            }
        };
        fold(static_cast<uint64_t>(r.algo.generation));
        fold(std::bit_cast<uint64_t>(r.algo.bestFitness));
        fold(std::bit_cast<uint64_t>(r.algo.meanFitness));
        fold(static_cast<uint64_t>(r.algo.totalGenes));
        fold(static_cast<uint64_t>(r.algo.evolutionOps));
        fold(static_cast<uint64_t>(r.inferenceSteps));
        fold(static_cast<uint64_t>(r.hw.eve.cycles));
        fold(static_cast<uint64_t>(r.hw.adam.cycles));
        fold(std::bit_cast<uint64_t>(r.hw.evolutionEnergyJ));
        std::printf("digest gen %03d 0x%016llx\n", r.algo.generation,
                    static_cast<unsigned long long>(h));
    }

    // Phase breakdown: mean wall-clock per generation, plus the
    // measured generation-barrier idle fraction (worker-seconds the
    // evaluation lanes spent outside evaluation bodies).
    if (!sys.reports().empty()) {
        core::PhaseBreakdown mean;
        double occupancy = 0.0;
        int occupancy_gens = 0;
        for (const auto &r : sys.reports()) {
            mean.evaluateSeconds += r.phases.evaluateSeconds;
            mean.reproduceSeconds += r.phases.reproduceSeconds;
            mean.speciateSeconds += r.phases.speciateSeconds;
            mean.reportSeconds += r.phases.reportSeconds;
            mean.wallSeconds += r.phases.wallSeconds;
            mean.planCompileCpuSeconds +=
                r.phases.planCompileCpuSeconds;
            mean.barrierIdleFraction += r.phases.barrierIdleFraction;
            if (r.waveStatsValid) {
                occupancy += r.batches.laneOccupancy();
                ++occupancy_gens;
            }
        }
        const double n = static_cast<double>(sys.reports().size());
        std::cout << "phase breakdown (mean ms/gen): evaluate "
                  << mean.evaluateSeconds * 1e3 / n << "  reproduce "
                  << mean.reproduceSeconds * 1e3 / n << "  speciate "
                  << mean.speciateSeconds * 1e3 / n << "  report "
                  << mean.reportSeconds * 1e3 / n << "  wall "
                  << mean.wallSeconds * 1e3 / n
                  << "  plan-compile (cpu) "
                  << mean.planCompileCpuSeconds * 1e3 / n << "\n";
        std::cout << "barrier idle fraction (mean over "
                  << sys.evalEngine().numThreads()
                  << " workers): " << mean.barrierIdleFraction / n
                  << "\n";
        if (occupancy_gens > 0)
            std::cout << "wave lane occupancy (mean): "
                      << occupancy /
                             static_cast<double>(occupancy_gens)
                      << " over " << occupancy_gens
                      << " wave-scheduled generations\n";
        else
            std::cout << "wave lane occupancy: n/a (wave scheduler "
                         "not active in this mode)\n";
    }
    if (sys.telemetry().installed())
        std::cout << "telemetry written to "
                  << sys.telemetry().config().dir << "/\n";

    const auto replay = sys.replayBest(1234);
    std::cout << "replay of best genome: " << replay.steps
              << " balanced steps (fitness " << replay.fitness << ")\n";
    std::cout << "best genome: "
              << sys.population().bestGenome().numNodeGenes()
              << " node genes, "
              << sys.population().bestGenome().numConnectionGenes()
              << " connection genes\n";
    return summary.solved ? 0 : 1;
}
